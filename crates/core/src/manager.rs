//! The self-tuning manager: the user-space `lfs++` daemon of the paper.
//!
//! The manager wakes every sampling period `S`, drains the tracer, runs
//! each managed task's [`TaskController`], executes the resulting
//! decisions (creating reservations, re-placing tasks) and submits the
//! batch of bandwidth requests to the [`Supervisor`], which grants or
//! compresses them (Equation (1)).
//!
//! It runs *outside* the simulated kernel — exactly like the paper's
//! user-space daemon — alternating `kernel.run_until(next_sample)` with
//! [`SelfTuningManager::step`].

use crate::controller::{ControllerConfig, ControllerInput, Decision, TaskController};
use selftune_sched::{BwRequest, CbsMode, ReservationScheduler, ServerConfig, ServerId};
use selftune_sched::{Place, Supervisor};
use selftune_simcore::kernel::{Kernel, TaskState};
use selftune_simcore::metrics::{MetricKey, Metrics};
use selftune_simcore::scheduler::Scheduler;
use selftune_simcore::task::TaskId;
use selftune_simcore::time::{Dur, Time};
use selftune_tracer::{entry_times_into, TraceReader};

/// Manager configuration.
#[derive(Clone, Debug)]
pub struct ManagerConfig {
    /// Sampling period `S` of the task controllers. The paper warns
    /// against `S = P` (remark 2 of Section 4.4); the default covers a
    /// dozen jobs of a 25 fps stream.
    pub sampling: Dur,
    /// Admission control and compression policy.
    pub supervisor: Supervisor,
    /// Depletion behaviour of created reservations.
    pub cbs_mode: CbsMode,
}

impl Default for ManagerConfig {
    fn default() -> Self {
        ManagerConfig {
            sampling: Dur::ms(500),
            supervisor: Supervisor::default(),
            cbs_mode: CbsMode::Hard,
        }
    }
}

/// The per-task metric keys, interned once so the sampling step does no
/// name formatting or string hashing.
#[derive(Copy, Clone)]
struct TaskKeys {
    period_est: MetricKey,
    attached: MetricKey,
    bw: MetricKey,
}

struct ManagedTask {
    task: TaskId,
    label: String,
    /// Interned `{label}.*` keys, resolved against the kernel's metric
    /// store on the first step (the kernel is not in scope at `manage`
    /// time) and reused by every later one.
    keys: Option<TaskKeys>,
    ctl: TaskController,
    server: Option<ServerId>,
    last_step: Option<Time>,
}

impl ManagedTask {
    fn keys(&mut self, metrics: &mut Metrics) -> TaskKeys {
        match self.keys {
            Some(k) => k,
            None => {
                let keys = TaskKeys {
                    period_est: metrics.key(&format!("{}.period_est_ms", self.label)),
                    attached: metrics.key(&format!("{}.attached", self.label)),
                    bw: metrics.key(&format!("{}.bw", self.label)),
                };
                self.keys = Some(keys);
                keys
            }
        }
    }
}

/// The manager (the paper's `lfs++` user-space tool).
pub struct SelfTuningManager {
    cfg: ManagerConfig,
    reader: TraceReader,
    tasks: Vec<ManagedTask>,
    /// Reused event batch: one allocation serves every sampling step.
    scratch: Vec<selftune_tracer::TraceEvent>,
    /// Reused entry-time buffer: the per-task event train is extracted into
    /// this instead of a fresh `Vec<f64>` per task per step.
    ev_scratch: Vec<f64>,
    /// Grants the supervisor curbed below their request, cumulatively —
    /// the node-level saturation signal the fleet layer feeds back on.
    compressed_grants: u64,
}

impl SelfTuningManager {
    /// Creates a manager draining the given tracer reader.
    pub fn new(cfg: ManagerConfig, reader: TraceReader) -> SelfTuningManager {
        SelfTuningManager {
            cfg,
            reader,
            tasks: Vec::new(),
            scratch: Vec::new(),
            ev_scratch: Vec::new(),
            compressed_grants: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ManagerConfig {
        &self.cfg
    }

    /// How many grants the supervisor has compressed below their request
    /// since the manager was created (saturation pressure sensor).
    pub fn compressed_grants(&self) -> u64 {
        self.compressed_grants
    }

    /// Bandwidth this manager's attached reservations currently hold in
    /// `res`, Σ Q/T over its own servers only — the *booked* half of the
    /// [`crate::share::DemandSignal`] a share controller one level up
    /// aggregates (a VM's elastic host share is sized from what its guest
    /// manager booked, not from what the tenant nominally claimed).
    pub fn booked_bandwidth(&self, res: &ReservationScheduler) -> f64 {
        self.tasks
            .iter()
            .filter_map(|t| t.server)
            .map(|sid| res.server(sid).config().bandwidth())
            .sum()
    }

    /// Re-bounds this manager's supervisor to `ulub` — how the adaptation
    /// layer above propagates a changed share down to the consumer: when
    /// an elastic VM's grant moves, its guest manager must compress (or
    /// relax) against the *new* supply, not the admission-time one.
    ///
    /// # Panics
    ///
    /// Panics if `ulub` is not in `(0, 1]`.
    pub fn set_bandwidth_bound(&mut self, ulub: f64) {
        assert!(ulub > 0.0 && ulub <= 1.0, "ulub {ulub} out of (0, 1]");
        self.cfg.supervisor.ulub = ulub;
    }

    /// Puts a legacy task under management.
    pub fn manage(&mut self, task: TaskId, label: &str, ctl_cfg: ControllerConfig) {
        self.tasks.push(ManagedTask {
            task,
            label: label.to_owned(),
            keys: None,
            ctl: TaskController::new(ctl_cfg),
            server: None,
            last_step: None,
        });
    }

    /// The reservation serving a managed task, if attached yet.
    pub fn server_of(&self, task: TaskId) -> Option<ServerId> {
        self.tasks
            .iter()
            .find(|t| t.task == task)
            .and_then(|t| t.server)
    }

    /// The controller of a managed task (spectrum inspection etc.).
    pub fn controller_of(&self, task: TaskId) -> Option<&TaskController> {
        self.tasks.iter().find(|t| t.task == task).map(|t| &t.ctl)
    }

    /// Stops managing a task: drops its controller and, if it was
    /// attached, shrinks its reservation to the floor and returns the
    /// task to the fair class at the next opportunity.
    ///
    /// Returns `true` if the task was under management.
    pub fn unmanage(&mut self, k: &mut Kernel<ReservationScheduler>, task: TaskId) -> bool {
        self.unmanage_in(k, |s| s, task)
    }

    /// [`SelfTuningManager::unmanage`] against a reservation scheduler
    /// embedded in a larger policy (see [`SelfTuningManager::step_in`]).
    pub fn unmanage_in<S: Scheduler>(
        &mut self,
        k: &mut Kernel<S>,
        mut res: impl FnMut(&mut S) -> &mut ReservationScheduler,
        task: TaskId,
    ) -> bool {
        let Some(pos) = self.tasks.iter().position(|t| t.task == task) else {
            return false;
        };
        let mt = self.tasks.remove(pos);
        if let Some(sid) = mt.server {
            let now = k.now();
            match k.task_state(task) {
                TaskState::Ready => res(k.sched_mut()).place_ready(task, Place::Fair, now),
                _ => res(k.sched_mut()).place(task, Place::Fair),
            }
            // Release the bandwidth: shrink to the admission floor (the
            // scheduler keeps the server object; ids stay stable).
            let period = res(k.sched_mut()).server(sid).config().period;
            let floor = self.cfg.supervisor.budget_floor(period);
            res(k.sched_mut()).server_mut(sid).set_params(floor, period);
        }
        true
    }

    /// Puts a migrated task under management with the source node's
    /// controller state: the reservation is created *immediately* with the
    /// carried `(budget, period)` (granted through the supervisor, so
    /// compression under saturation still applies) and the controller
    /// starts from the carried period belief instead of re-detecting from
    /// scratch. The warm incarnation marks `"<label>.attached"` at once —
    /// the hand-over gap is the spawn-to-attach delay, which this path
    /// collapses to zero.
    #[allow(clippy::too_many_arguments)] // a projection + full hand-over state
    pub fn manage_warm_in<S: Scheduler>(
        &mut self,
        k: &mut Kernel<S>,
        mut res: impl FnMut(&mut S) -> &mut ReservationScheduler,
        task: TaskId,
        label: &str,
        ctl_cfg: ControllerConfig,
        budget: Dur,
        period: Dur,
    ) {
        if period.is_zero() || budget.is_zero() {
            // Degenerate hand-over state: fall back to cold-start.
            self.manage(task, label, ctl_cfg);
            return;
        }
        let now = k.now();
        let floor = self.cfg.supervisor.budget_floor(period);
        let sid = res(k.sched_mut())
            .create_server(ServerConfig::new(floor, period).with_mode(self.cfg.cbs_mode));
        match k.task_state(task) {
            TaskState::Ready => res(k.sched_mut()).place_ready(task, Place::Server(sid), now),
            _ => res(k.sched_mut()).place(task, Place::Server(sid)),
        }
        let grants = self.cfg.supervisor.apply(
            res(k.sched_mut()),
            &[BwRequest {
                server: sid,
                budget,
                period,
            }],
        );
        if grants.iter().any(|g| g.compressed) {
            self.compressed_grants += 1;
        }
        k.metrics_mut().mark(&format!("{label}.attached"), now);
        self.tasks.push(ManagedTask {
            task,
            label: label.to_owned(),
            keys: None,
            ctl: TaskController::with_initial_period(ctl_cfg, period),
            server: Some(sid),
            last_step: None,
        });
    }

    /// Flat-kernel wrapper of [`SelfTuningManager::manage_warm_in`].
    pub fn manage_warm(
        &mut self,
        k: &mut Kernel<ReservationScheduler>,
        task: TaskId,
        label: &str,
        ctl_cfg: ControllerConfig,
        budget: Dur,
        period: Dur,
    ) {
        self.manage_warm_in(k, |s| s, task, label, ctl_cfg, budget, period);
    }

    /// One sampling step against the kernel.
    ///
    /// Records, per managed task `label`:
    /// * `"<label>.bw"` — granted bandwidth series,
    /// * `"<label>.period_est_ms"` — period-estimate series,
    /// * `"<label>.attached"` mark — when the reservation was created.
    pub fn step(&mut self, k: &mut Kernel<ReservationScheduler>) {
        self.step_in(k, |s| s);
    }

    /// One sampling step against a reservation scheduler embedded in a
    /// larger policy: `res` projects the kernel's scheduler to the
    /// [`ReservationScheduler`] this manager owns. The flat single-level
    /// stack passes the identity; the `selftune-virt` layer projects to a
    /// *guest* scheduler so each virtual platform runs its own manager —
    /// per-tenant self-tuning inside a host reservation.
    pub fn step_in<S: Scheduler>(
        &mut self,
        k: &mut Kernel<S>,
        mut res: impl FnMut(&mut S) -> &mut ReservationScheduler,
    ) {
        let now = k.now();
        // One batch buffer serves every step (disjoint field borrows let
        // the task loop read it directly).
        self.reader.drain_into(&mut self.scratch);
        let mut requests: Vec<BwRequest> = Vec::new();
        for mt in &mut self.tasks {
            if k.task_state(mt.task) == TaskState::Exited {
                continue;
            }
            let keys = mt.keys(k.metrics_mut());
            entry_times_into(&self.scratch, mt.task, &mut self.ev_scratch);
            let consumed = k.thread_time(mt.task);
            let exhausted = mt
                .server
                .map(|sid| res(k.sched_mut()).server_mut(sid).take_exhausted_flag())
                .unwrap_or(false);
            let elapsed = match mt.last_step {
                Some(t) => now.saturating_since(t),
                None => self.cfg.sampling,
            };
            mt.last_step = Some(now);
            if elapsed.is_zero() {
                continue;
            }
            let decision = mt.ctl.step(&ControllerInput {
                now,
                events_secs: &self.ev_scratch,
                consumed,
                elapsed,
                exhausted,
                attached: mt.server.is_some(),
            });
            if let Some(p) = mt.ctl.period() {
                k.metrics_mut()
                    .record_k(keys.period_est, now, p.as_ms_f64());
            }
            match decision {
                Decision::None => {}
                Decision::Attach(req) | Decision::Adjust(req) if req.period.is_zero() => {
                    // Degenerate period estimate (a starved task's trace
                    // can collapse to a zero-width train): no reservation
                    // can be parameterised from it — wait for better data.
                }
                Decision::Attach(req) => {
                    // Create the server with a floor budget; the real grant
                    // arrives through the supervisor batch below, so
                    // compression under saturation applies from the start.
                    let floor = self.cfg.supervisor.budget_floor(req.period);
                    let sid = res(k.sched_mut()).create_server(
                        ServerConfig::new(floor, req.period).with_mode(self.cfg.cbs_mode),
                    );
                    match k.task_state(mt.task) {
                        TaskState::Ready => {
                            res(k.sched_mut()).place_ready(mt.task, Place::Server(sid), now);
                        }
                        _ => res(k.sched_mut()).place(mt.task, Place::Server(sid)),
                    }
                    mt.server = Some(sid);
                    k.metrics_mut().mark_k(keys.attached, now);
                    requests.push(BwRequest {
                        server: sid,
                        budget: req.budget,
                        period: req.period,
                    });
                }
                Decision::Adjust(req) => {
                    let sid = mt.server.expect("Adjust implies an attached server");
                    requests.push(BwRequest {
                        server: sid,
                        budget: req.budget,
                        period: req.period,
                    });
                }
            }
        }
        let grants = self.cfg.supervisor.apply(res(k.sched_mut()), &requests);
        for g in &grants {
            if g.compressed {
                self.compressed_grants += 1;
            }
            if let Some(mt) = self.tasks.iter().find(|t| t.server == Some(g.server)) {
                let keys = mt.keys.expect("granted task has stepped");
                k.metrics_mut().record_k(keys.bw, now, g.bandwidth());
            }
        }
    }

    /// Drives the kernel to `until`, sampling every `S` along the way.
    pub fn run(&mut self, k: &mut Kernel<ReservationScheduler>, until: Time) {
        while k.now() < until {
            let next = (k.now() + self.cfg.sampling).min(until);
            k.run_until(next);
            self.step(k);
        }
    }

    /// [`SelfTuningManager::run`] against an embedded reservation
    /// scheduler (see [`SelfTuningManager::step_in`]).
    pub fn run_in<S: Scheduler>(
        &mut self,
        k: &mut Kernel<S>,
        mut res: impl FnMut(&mut S) -> &mut ReservationScheduler,
        until: Time,
    ) {
        while k.now() < until {
            let next = (k.now() + self.cfg.sampling).min(until);
            k.run_until(next);
            self.step_in(k, &mut res);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selftune_apps::{MediaConfig, MediaPlayer};
    use selftune_simcore::rng::Rng;
    use selftune_simcore::stats::mean_std_of;
    use selftune_tracer::{Tracer, TracerConfig};

    /// End-to-end: an unmanaged mplayer is detected, attached to a
    /// reservation, and its budget converges to demand + spread.
    #[test]
    fn full_loop_converges_on_video_player() {
        let mut k = Kernel::new(ReservationScheduler::new());
        let (hook, reader) = Tracer::create(TracerConfig::default());
        k.install_hook(Box::new(hook));

        let cfg = MediaConfig::mplayer_video_25fps();
        let u = cfg.utilisation();
        let player = MediaPlayer::new(cfg, Rng::new(77));
        let tid = k.spawn("mplayer", Box::new(player));

        let mut mgr = SelfTuningManager::new(ManagerConfig::default(), reader);
        mgr.manage(tid, "mplayer", ControllerConfig::default());
        mgr.run(&mut k, Time::ZERO + Dur::secs(12));

        // The period was detected close to 40 ms.
        let ctl = mgr.controller_of(tid).unwrap();
        let p = ctl.period().expect("period detected").as_ms_f64();
        assert!((p - 40.0).abs() < 1.5, "period {p} ms");

        // The task got attached to a server.
        let sid = mgr.server_of(tid).expect("attached");
        let bw = k.sched().server(sid).config().bandwidth();
        assert!(
            bw > u * 0.9 && bw < u * 2.0,
            "granted bw {bw} vs utilisation {u}"
        );

        // QoS: after the warm-up the inter-frame times sit at 40 ms.
        // Borrowing tail-window read: no Vec materialised for the gaps.
        let half = k.metrics().marks("mplayer.frame").len() / 2;
        let (m, sd) = mean_std_of(k.metrics().inter_mark_iter("mplayer.frame").skip(half));
        assert!((m - 40.0).abs() < 2.0, "steady IFT mean {m}");
        assert!(sd < 15.0, "steady IFT sd {sd}");

        // Bandwidth series was recorded.
        assert!(!k.metrics().series("mplayer.bw").is_empty());
    }

    #[test]
    fn unmanage_releases_bandwidth_and_returns_task_to_fair() {
        let mut k = Kernel::new(ReservationScheduler::new());
        let (hook, reader) = Tracer::create(TracerConfig::default());
        k.install_hook(Box::new(hook));
        let player = MediaPlayer::new(MediaConfig::mplayer_video_25fps(), Rng::new(7));
        let tid = k.spawn("mplayer", Box::new(player));
        let mut mgr = SelfTuningManager::new(ManagerConfig::default(), reader);
        mgr.manage(tid, "mplayer", ControllerConfig::default());
        mgr.run(&mut k, Time::ZERO + Dur::secs(5));
        assert!(mgr.server_of(tid).is_some());
        let reserved_before = k.sched().total_reserved_bandwidth();
        assert!(reserved_before > 0.2);

        assert!(mgr.unmanage(&mut k, tid));
        assert!(mgr.server_of(tid).is_none());
        assert!(k.sched().total_reserved_bandwidth() < 0.05);
        assert_eq!(k.sched().place_of(tid), Place::Fair);
        // The player keeps running (best effort) without the manager.
        let frames_before = k.metrics().marks("mplayer.frame").len();
        k.run_until(Time::ZERO + Dur::secs(7));
        assert!(k.metrics().marks("mplayer.frame").len() > frames_before);
        // Unmanaging twice is a no-op.
        assert!(!mgr.unmanage(&mut k, tid));
    }

    #[test]
    fn manage_warm_attaches_immediately_with_carried_state() {
        let mut k = Kernel::new(ReservationScheduler::new());
        let (hook, reader) = Tracer::create(TracerConfig::default());
        k.install_hook(Box::new(hook));
        let player = MediaPlayer::new(MediaConfig::mplayer_video_25fps(), Rng::new(3));
        let tid = k.spawn("mplayer", Box::new(player));
        let mut mgr = SelfTuningManager::new(ManagerConfig::default(), reader);
        // A migrated incarnation arrives with the source's grant: 14 ms
        // every 40 ms, period already detected.
        mgr.manage_warm(
            &mut k,
            tid,
            "mplayer",
            ControllerConfig::default(),
            Dur::ms(14),
            Dur::ms(40),
        );
        // Attached at spawn: no detection gap at all.
        let sid = mgr.server_of(tid).expect("warm start attaches at once");
        assert_eq!(k.sched().server(sid).config().budget, Dur::ms(14));
        assert_eq!(k.sched().server(sid).config().period, Dur::ms(40));
        let marks = k.metrics().marks("mplayer.attached");
        assert_eq!(marks, &[Time::ZERO], "attach mark at hand-over instant");
        let ctl = mgr.controller_of(tid).expect("managed");
        assert_eq!(ctl.period(), Some(Dur::ms(40)));

        // The controller keeps adapting from the carried state: after a
        // few samples the budget tracks the real demand instead of
        // sticking to the carried figure.
        mgr.run(&mut k, Time::ZERO + Dur::secs(6));
        let bw = k.sched().server(sid).config().bandwidth();
        let u = MediaConfig::mplayer_video_25fps().utilisation();
        assert!(bw > u * 0.9 && bw < u * 2.0, "adapted bw {bw} vs {u}");
        // And the QoS held from the first frame (no cold-start misses).
        let half = k.metrics().marks("mplayer.frame").len() / 2;
        let (m, _) = mean_std_of(k.metrics().inter_mark_iter("mplayer.frame").skip(half));
        assert!((m - 40.0).abs() < 2.0, "steady IFT mean {m}");
    }

    #[test]
    fn unmanaged_kernel_steps_are_noops() {
        let mut k = Kernel::new(ReservationScheduler::new());
        let (_hook, reader) = Tracer::create(TracerConfig::default());
        let mut mgr = SelfTuningManager::new(ManagerConfig::default(), reader);
        mgr.run(&mut k, Time::ZERO + Dur::secs(1));
        assert_eq!(k.now(), Time::ZERO + Dur::secs(1));
        assert_eq!(k.sched().server_count(), 0);
    }
}
