//! The per-task controller: period analyser + feedback law (Figure 3).
//!
//! A [`TaskController`] is pure decision logic: the manager feeds it the
//! observations harvested from the kernel (trace events, cumulative CPU
//! time, the budget-exhaustion flag) and receives scheduling decisions
//! (attach the task to a fresh reservation, or adjust an existing one).
//! Keeping kernel access out of this type makes the control laws unit
//! testable in isolation.

use crate::lfs::{Lfs, LfsConfig};
use crate::lfspp::{BudgetRequest, LfsPlusPlus, LfsPpConfig};
use crate::share::Hysteresis;
use selftune_simcore::time::{Dur, Time};
use selftune_spectrum::{AnalyserConfig, PeriodAnalyser};

/// Which feedback law drives the budget.
#[derive(Clone, Debug)]
pub enum FeedbackKind {
    /// The paper's LFS++ (consumed-time sensor + quantile predictor).
    LfsPp(LfsPpConfig),
    /// The original LFS baseline (binary budget-exhaustion sensor).
    Lfs(LfsConfig),
}

impl Default for FeedbackKind {
    fn default() -> Self {
        FeedbackKind::LfsPp(LfsPpConfig::default())
    }
}

/// Controller configuration.
#[derive(Clone, Debug)]
pub struct ControllerConfig {
    /// Period analyser parameters.
    pub analyser: AnalyserConfig,
    /// Feedback law.
    pub feedback: FeedbackKind,
    /// Skip rate detection and use this period (the paper's Section 5.4
    /// isolation runs disable detection).
    pub fixed_period: Option<Dur>,
    /// Ignore re-detected periods within this relative distance of the
    /// current one (avoids reservation churn from estimator jitter).
    pub period_hysteresis: f64,
    /// A period estimate that *differs* from the current belief (beyond the
    /// hysteresis) is adopted only after this many consecutive agreeing
    /// estimates — a transient mis-detection (e.g. a GOP harmonic winning
    /// one window) must not re-dimension the reservation.
    pub period_confirmations: u32,
    /// Reject period estimates below this bound.
    pub min_period: Dur,
    /// Reject period estimates above this bound.
    pub max_period: Dur,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            analyser: AnalyserConfig::default(),
            feedback: FeedbackKind::default(),
            fixed_period: None,
            period_hysteresis: 0.05,
            period_confirmations: 3,
            min_period: Dur::ms(2),
            max_period: Dur::ms(500),
        }
    }
}

/// Observations handed to one controller step.
#[derive(Debug)]
pub struct ControllerInput<'a> {
    /// Sampling instant.
    pub now: Time,
    /// Entry-edge timestamps (seconds) of this task's traced syscalls since
    /// the previous step.
    pub events_secs: &'a [f64],
    /// Cumulative CPU time consumed by the task (thread-time sensor).
    pub consumed: Dur,
    /// Wall time since the previous step (`S`).
    pub elapsed: Dur,
    /// Binary sensor: did the reservation deplete since the last step?
    pub exhausted: bool,
    /// Whether the task already runs inside a reservation.
    pub attached: bool,
}

/// A controller decision for the manager to execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Nothing to do yet (still detecting, or no new information).
    None,
    /// Create a reservation with these parameters and attach the task.
    Attach(BudgetRequest),
    /// Submit this request for the existing reservation.
    Adjust(BudgetRequest),
}

enum Feedback {
    LfsPp(LfsPlusPlus),
    Lfs(Lfs),
}

/// The per-task controller.
pub struct TaskController {
    cfg: ControllerConfig,
    analyser: PeriodAnalyser,
    feedback: Feedback,
    period: Option<Dur>,
    /// Period-change suppression — the same deadband/confirmation state
    /// machine the VM-level share controller uses (see [`crate::share`]).
    hysteresis: Hysteresis,
}

impl TaskController {
    /// Creates a controller.
    pub fn new(cfg: ControllerConfig) -> TaskController {
        let analyser = PeriodAnalyser::new(cfg.analyser);
        let feedback = match &cfg.feedback {
            FeedbackKind::LfsPp(c) => Feedback::LfsPp(LfsPlusPlus::new(c.clone())),
            FeedbackKind::Lfs(c) => Feedback::Lfs(Lfs::new(c.clone())),
        };
        let period = cfg.fixed_period;
        let hysteresis = Hysteresis::new(cfg.period_hysteresis, cfg.period_confirmations);
        TaskController {
            cfg,
            analyser,
            feedback,
            period,
            hysteresis,
        }
    }

    /// Creates a controller seeded with an initial period belief — the
    /// warm-start path for a task migrated from another node, where the
    /// source already detected the period. Unlike `fixed_period` the
    /// belief stays *live*: fresh estimates on the destination can still
    /// revise it through the usual hysteresis/confirmation machinery.
    pub fn with_initial_period(cfg: ControllerConfig, period: Dur) -> TaskController {
        let mut ctl = TaskController::new(cfg);
        if ctl.period.is_none() && !period.is_zero() {
            ctl.period = Some(period);
        }
        ctl
    }

    /// The currently believed task period, if any.
    pub fn period(&self) -> Option<Dur> {
        self.period
    }

    /// The period analyser (for spectrum inspection in experiments).
    pub fn analyser(&self) -> &PeriodAnalyser {
        &self.analyser
    }

    fn update_period(&mut self, events_secs: &[f64]) {
        self.analyser.feed(events_secs);
        let Some(est) = self.analyser.estimate() else {
            return;
        };
        let p = Dur::from_secs_f64(est.period);
        if p < self.cfg.min_period || p > self.cfg.max_period {
            return;
        }
        // Deadband + confirmation counting live in the shared state
        // machine; the controller only maps durations to seconds.
        let current = self.period.map(|d| d.as_secs_f64());
        if let Some(adopted) = self.hysteresis.filter(current, p.as_secs_f64()) {
            self.period = Some(Dur::from_secs_f64(adopted));
        }
    }

    /// One sampling step.
    pub fn step(&mut self, input: &ControllerInput<'_>) -> Decision {
        if self.cfg.fixed_period.is_none() {
            self.update_period(input.events_secs);
        }
        let Some(period) = self.period else {
            return Decision::None;
        };
        let request = match &mut self.feedback {
            Feedback::LfsPp(c) => c.step(input.consumed, input.elapsed, period),
            Feedback::Lfs(c) => Some(c.step(input.exhausted, period)),
        };
        match (request, input.attached) {
            (None, _) => Decision::None,
            (Some(r), false) => Decision::Attach(r),
            (Some(r), true) => Decision::Adjust(r),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selftune_spectrum::synthetic_burst_train;

    fn input<'a>(events: &'a [f64], consumed_ms: u64, attached: bool) -> ControllerInput<'a> {
        ControllerInput {
            now: Time::ZERO + Dur::secs(1),
            events_secs: events,
            consumed: Dur::ms(consumed_ms),
            elapsed: Dur::secs(1),
            exhausted: false,
            attached,
        }
    }

    #[test]
    fn no_decision_while_period_unknown() {
        let mut c = TaskController::new(ControllerConfig::default());
        // Aperiodic-ish sparse events: analyser may or may not estimate;
        // with no events at all it certainly cannot.
        let d = c.step(&input(&[], 10, false));
        assert_eq!(d, Decision::None);
        assert_eq!(c.period(), None);
    }

    #[test]
    fn detects_period_then_attaches() {
        let mut c = TaskController::new(ControllerConfig::default());
        let events = synthetic_burst_train(0.04, 50, 6, 0.005);
        // First step: period detected, LFS++ baseline stored, no request.
        let d1 = c.step(&input(&events, 100, false));
        assert_eq!(d1, Decision::None);
        let p = c.period().expect("period detected");
        assert!((p.as_ms_f64() - 40.0).abs() < 1.0, "{p}");
        // Second step: a consumption increment exists → attach.
        let d2 = c.step(&input(&[], 350, false));
        match d2 {
            Decision::Attach(r) => {
                assert_eq!(r.period, p);
                // ΔW = 250ms over 1s with P = 40ms → c ≈ 10ms; ×1.15.
                assert!((r.budget.as_ms_f64() - 11.5).abs() < 0.5, "{r:?}");
            }
            other => panic!("expected attach, got {other:?}"),
        }
    }

    #[test]
    fn adjusts_once_attached() {
        let mut c = TaskController::new(ControllerConfig {
            fixed_period: Some(Dur::ms(40)),
            ..ControllerConfig::default()
        });
        let _ = c.step(&input(&[], 100, true));
        let d = c.step(&input(&[], 350, true));
        assert!(matches!(d, Decision::Adjust(_)), "{d:?}");
    }

    #[test]
    fn fixed_period_skips_detection() {
        let mut c = TaskController::new(ControllerConfig {
            fixed_period: Some(Dur::ms(40)),
            feedback: FeedbackKind::Lfs(LfsConfig::default()),
            ..ControllerConfig::default()
        });
        // LFS decides from step one, even with zero events.
        let d = c.step(&input(&[], 0, false));
        match d {
            Decision::Attach(r) => assert_eq!(r.period, Dur::ms(40)),
            other => panic!("expected attach, got {other:?}"),
        }
    }

    #[test]
    fn hysteresis_suppresses_small_period_changes() {
        let mut c = TaskController::new(ControllerConfig::default());
        let events = synthetic_burst_train(0.04, 50, 6, 0.005);
        let _ = c.step(&input(&events, 100, false));
        let p1 = c.period().unwrap();
        // Feed a slightly different rate (within 5%): period unchanged.
        let events2: Vec<f64> = synthetic_burst_train(0.0405, 50, 6, 0.005)
            .iter()
            .map(|t| t + 2.5)
            .collect();
        let _ = c.step(&input(&events2, 200, false));
        assert_eq!(c.period(), Some(p1));
    }

    #[test]
    fn out_of_range_estimates_are_rejected() {
        let mut c = TaskController::new(ControllerConfig {
            min_period: Dur::ms(35),
            max_period: Dur::ms(50),
            ..ControllerConfig::default()
        });
        // 10ms period (100 Hz) is outside [35, 50] ms: rejected.
        let events = synthetic_burst_train(0.01, 200, 4, 0.002);
        let _ = c.step(&input(&events, 100, false));
        assert_eq!(c.period(), None);
    }
}
