//! The LFS++ feedback law (Section 4.4).
//!
//! Every sampling period `S` the controller reads the cumulative CPU time
//! `W_k` consumed by the task, converts the increment into a per-job cost
//! sample `c_k = P·(W_k − W_{k−1})/S` using the estimated task period `P`,
//! feeds the predictor, and requests
//!
//! ```text
//! Q_req = (1 + x) · P( c_1, ..., c_N )      with  T^s = P,
//! ```
//!
//! where `x` is the *spread factor* (10–20%) that buys robustness against
//! prediction error and responsiveness to workload increases.

use crate::predictor::{Predictor, QuantileEstimator};
use selftune_simcore::time::Dur;

/// LFS++ parameters.
#[derive(Clone, Debug)]
pub struct LfsPpConfig {
    /// Spread factor `x` (the paper uses 10–20%).
    pub spread: f64,
    /// Predictor window length `N`.
    pub window: usize,
    /// Predictor quantile `p` (the paper's default: second max of 16).
    pub quantile: f64,
}

impl Default for LfsPpConfig {
    fn default() -> Self {
        LfsPpConfig {
            spread: 0.15,
            window: 16,
            quantile: 0.9375,
        }
    }
}

/// A request produced by a feedback step.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct BudgetRequest {
    /// Requested budget `Q_req`.
    pub budget: Dur,
    /// Requested reservation period (the estimated task period).
    pub period: Dur,
}

impl BudgetRequest {
    /// Requested bandwidth `Q/T`.
    pub fn bandwidth(&self) -> f64 {
        self.budget.ratio(self.period)
    }
}

/// The LFS++ controller state.
#[derive(Debug)]
pub struct LfsPlusPlus {
    cfg: LfsPpConfig,
    predictor: QuantileEstimator,
    last_reading: Option<Dur>,
}

impl LfsPlusPlus {
    /// Creates a controller.
    pub fn new(cfg: LfsPpConfig) -> LfsPlusPlus {
        let predictor = QuantileEstimator::new(cfg.window, cfg.quantile);
        LfsPlusPlus {
            cfg,
            predictor,
            last_reading: None,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &LfsPpConfig {
        &self.cfg
    }

    /// One feedback step.
    ///
    /// * `consumed_total` — cumulative CPU consumed by the task (`W_k`,
    ///   from `CLOCK_THREAD_CPUTIME_ID` / `qres_get_time()`).
    /// * `elapsed` — wall time since the previous step (`S`).
    /// * `period` — the task period estimated by the analyser (`P`).
    ///
    /// Returns `None` on the very first step (no increment yet) or while
    /// the predictor has no samples.
    ///
    /// # Panics
    ///
    /// Panics if `elapsed` or `period` is zero, or if `consumed_total`
    /// decreased.
    pub fn step(
        &mut self,
        consumed_total: Dur,
        elapsed: Dur,
        period: Dur,
    ) -> Option<BudgetRequest> {
        assert!(!elapsed.is_zero(), "elapsed must be positive");
        assert!(!period.is_zero(), "period must be positive");
        let last = self.last_reading.replace(consumed_total);
        let dw = match last {
            None => return None,
            Some(w) => consumed_total
                .checked_sub(w)
                .expect("cumulative CPU time went backwards"),
        };
        // c = P·ΔW/S — the average per-job cost over the sampling interval.
        let per_job = dw.mul_f64(period.ratio(elapsed));
        self.predictor.observe(per_job);
        let predicted = self.predictor.predict()?;
        let budget = predicted.mul_f64(1.0 + self.cfg.spread).min(period);
        Some(BudgetRequest { budget, period })
    }

    /// Forgets all history (e.g. after a detected mode change).
    pub fn reset(&mut self) {
        self.predictor.reset();
        self.last_reading = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_step_yields_nothing() {
        let mut c = LfsPlusPlus::new(LfsPpConfig::default());
        assert_eq!(c.step(Dur::ms(10), Dur::secs(1), Dur::ms(40)), None);
    }

    #[test]
    fn steady_load_requests_utilisation_plus_spread() {
        let mut c = LfsPlusPlus::new(LfsPpConfig {
            spread: 0.10,
            ..LfsPpConfig::default()
        });
        // Task consumes 10ms per 40ms period: sampling every 1s sees
        // ΔW = 250ms → per-job cost = 10ms.
        let mut total = Dur::ZERO;
        let mut req = None;
        for _ in 0..20 {
            total += Dur::ms(250);
            req = c.step(total, Dur::secs(1), Dur::ms(40));
        }
        let r = req.expect("request after warmup");
        assert_eq!(r.period, Dur::ms(40));
        assert!((r.budget.as_ms_f64() - 11.0).abs() < 0.01, "{r:?}");
        assert!((r.bandwidth() - 0.275).abs() < 0.001);
    }

    #[test]
    fn quantile_tracks_bursty_jobs() {
        // Alternating cheap/expensive sampling intervals: the quantile
        // predictor picks (near) the expensive one.
        let mut c = LfsPlusPlus::new(LfsPpConfig {
            spread: 0.0,
            window: 8,
            quantile: 1.0,
        });
        let mut total = Dur::ZERO;
        let mut last = None;
        for i in 0..10 {
            total += if i % 2 == 0 {
                Dur::ms(100)
            } else {
                Dur::ms(300)
            };
            last = c.step(total, Dur::secs(1), Dur::ms(100));
        }
        // Max per-job cost = 300ms·(0.1/1.0) = 30ms.
        assert_eq!(last.unwrap().budget, Dur::ms(30));
    }

    #[test]
    fn budget_saturates_at_period() {
        let mut c = LfsPlusPlus::new(LfsPpConfig::default());
        let _ = c.step(Dur::ZERO, Dur::secs(1), Dur::ms(40));
        // The task consumed a full second of CPU in one second (hog).
        let r = c.step(Dur::secs(1), Dur::secs(1), Dur::ms(40)).unwrap();
        assert_eq!(r.budget, Dur::ms(40));
        assert!((r.bandwidth() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn responds_quickly_to_load_increase() {
        // After a workload jump, the request reflects it within two
        // samples (the default predictor is the *second* maximum of 16) —
        // the "adapts almost immediately" behaviour of Figure 13.
        let mut c = LfsPlusPlus::new(LfsPpConfig::default());
        let mut total = Dur::ZERO;
        let _ = c.step(total, Dur::secs(1), Dur::ms(40));
        total += Dur::ms(100);
        let low = c.step(total, Dur::secs(1), Dur::ms(40)).unwrap();
        total += Dur::ms(400);
        let _ = c.step(total, Dur::secs(1), Dur::ms(40)).unwrap();
        total += Dur::ms(400);
        let high = c.step(total, Dur::secs(1), Dur::ms(40)).unwrap();
        assert!(high.budget >= low.budget * 3, "{low:?} -> {high:?}");
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn decreasing_reading_panics() {
        let mut c = LfsPlusPlus::new(LfsPpConfig::default());
        let _ = c.step(Dur::ms(10), Dur::secs(1), Dur::ms(40));
        let _ = c.step(Dur::ms(5), Dur::secs(1), Dur::ms(40));
    }

    #[test]
    fn reset_forgets_history() {
        let mut c = LfsPlusPlus::new(LfsPpConfig::default());
        let _ = c.step(Dur::ms(10), Dur::secs(1), Dur::ms(40));
        c.reset();
        assert_eq!(c.step(Dur::ms(20), Dur::secs(1), Dur::ms(40)), None);
    }
}
