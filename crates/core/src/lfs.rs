//! The original Legacy Feedback Scheduler (LFS) baseline.
//!
//! Following Abeni & Palopoli (the paper's reference \[2\]), the original LFS
//! samples a *binary* variable per interval — "did the task receive enough
//! computation?" — implemented here as the CBS budget-exhaustion flag. The
//! control law is a multiplicative increase on starvation and a gentle
//! decrease otherwise, which is why it needs over a hundred frames to ramp
//! the reserved CPU up to demand in the paper's Figure 13, while LFS++
//! (with its finer-grained sensor) adapts almost immediately.

use crate::lfspp::BudgetRequest;
use selftune_simcore::time::Dur;

/// LFS parameters.
#[derive(Clone, Debug)]
pub struct LfsConfig {
    /// Initial bandwidth assigned before any feedback.
    pub initial_bw: f64,
    /// Multiplicative increase when the budget was exhausted.
    pub up: f64,
    /// Multiplicative decrease when it was not.
    pub down: f64,
    /// Lower clamp for the controlled bandwidth.
    pub min_bw: f64,
    /// Upper clamp for the controlled bandwidth.
    pub max_bw: f64,
}

impl Default for LfsConfig {
    fn default() -> Self {
        LfsConfig {
            initial_bw: 0.10,
            up: 1.05,
            down: 0.99,
            min_bw: 0.01,
            max_bw: 0.95,
        }
    }
}

/// The binary-sensor feedback controller.
#[derive(Debug)]
pub struct Lfs {
    cfg: LfsConfig,
    bw: f64,
    steps: u64,
}

impl Lfs {
    /// Creates a controller at its initial bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (`up < 1`, `down > 1`,
    /// clamps out of order, or the initial bandwidth outside the clamps).
    pub fn new(cfg: LfsConfig) -> Lfs {
        assert!(cfg.up >= 1.0, "up factor must be >= 1");
        assert!(cfg.down > 0.0 && cfg.down <= 1.0, "down factor in (0, 1]");
        assert!(
            0.0 < cfg.min_bw && cfg.min_bw <= cfg.max_bw && cfg.max_bw <= 1.0,
            "clamps out of order"
        );
        assert!(
            (cfg.min_bw..=cfg.max_bw).contains(&cfg.initial_bw),
            "initial bandwidth outside clamps"
        );
        let bw = cfg.initial_bw;
        Lfs { cfg, bw, steps: 0 }
    }

    /// The configuration in use.
    pub fn config(&self) -> &LfsConfig {
        &self.cfg
    }

    /// Current controlled bandwidth.
    pub fn bandwidth(&self) -> f64 {
        self.bw
    }

    /// Number of feedback steps performed.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// One feedback step: `exhausted` is the binary sensor reading, and
    /// `period` the reservation period to request (fixed, or supplied by
    /// the period analyser). Returns the new `(Q, T)` request.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn step(&mut self, exhausted: bool, period: Dur) -> BudgetRequest {
        assert!(!period.is_zero(), "period must be positive");
        self.steps += 1;
        self.bw = if exhausted {
            (self.bw * self.cfg.up).min(self.cfg.max_bw)
        } else {
            (self.bw * self.cfg.down).max(self.cfg.min_bw)
        };
        BudgetRequest {
            budget: period.mul_f64(self.bw),
            period,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_initial_bandwidth() {
        let l = Lfs::new(LfsConfig::default());
        assert!((l.bandwidth() - 0.10).abs() < 1e-12);
    }

    #[test]
    fn ramps_up_under_starvation() {
        let mut l = Lfs::new(LfsConfig::default());
        let p = Dur::ms(40);
        for _ in 0..20 {
            let _ = l.step(true, p);
        }
        // 0.10 · 1.05^20 ≈ 0.265.
        assert!((l.bandwidth() - 0.10 * 1.05_f64.powi(20)).abs() < 1e-9);
    }

    #[test]
    fn ramp_is_slow_compared_to_lfspp() {
        // To go from 10% to 30% takes ≈ 23 steps at 5% growth — this is
        // the >100-frame convergence of Figure 13 when sampled every few
        // frames.
        let mut l = Lfs::new(LfsConfig::default());
        let mut steps = 0;
        while l.bandwidth() < 0.30 {
            let _ = l.step(true, Dur::ms(40));
            steps += 1;
        }
        assert!((20..30).contains(&steps), "{steps} steps");
    }

    #[test]
    fn decays_when_satisfied() {
        let mut l = Lfs::new(LfsConfig::default());
        for _ in 0..10 {
            let _ = l.step(true, Dur::ms(40));
        }
        let high = l.bandwidth();
        for _ in 0..10 {
            let _ = l.step(false, Dur::ms(40));
        }
        assert!(l.bandwidth() < high);
    }

    #[test]
    fn clamps_hold() {
        let mut l = Lfs::new(LfsConfig::default());
        for _ in 0..500 {
            let _ = l.step(true, Dur::ms(40));
        }
        assert!((l.bandwidth() - 0.95).abs() < 1e-12);
        for _ in 0..5_000 {
            let _ = l.step(false, Dur::ms(40));
        }
        assert!((l.bandwidth() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn request_scales_with_period() {
        let mut l = Lfs::new(LfsConfig::default());
        let r = l.step(false, Dur::ms(100));
        assert_eq!(r.period, Dur::ms(100));
        assert!((r.bandwidth() - l.bandwidth()).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "clamps")]
    fn bad_clamps_panic() {
        let _ = Lfs::new(LfsConfig {
            min_bw: 0.5,
            max_bw: 0.2,
            ..LfsConfig::default()
        });
    }
}
