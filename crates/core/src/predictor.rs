//! Computation-time predictors for the feedback controller.
//!
//! LFS++ feeds per-job cost samples into a predictor `P(·)` and reserves
//! `(1 + x)·P(window)` (Section 4.4). The paper proposes a *quantile
//! estimator*: the p-th quantile of the last `N` samples, where `p = (N−j)/N`
//! selects the (j+1)-th largest sample (`p = 1` is the max, `p = 0.9375`
//! with `N = 16` the second maximum, and so on). EWMA and mean+kσ
//! predictors are provided as ablation alternatives.

use selftune_simcore::time::Dur;
use std::collections::VecDeque;

/// A streaming predictor of per-job computation time.
pub trait Predictor {
    /// Feeds one observed per-job cost.
    fn observe(&mut self, sample: Dur);
    /// Current prediction, once enough samples were observed.
    fn predict(&self) -> Option<Dur>;
    /// Drops all state.
    fn reset(&mut self);
}

/// The paper's quantile estimator over a sliding window of `N` samples.
#[derive(Debug, Clone)]
pub struct QuantileEstimator {
    window: VecDeque<Dur>,
    n: usize,
    /// Number of samples from the top: 0 = max, 1 = second max, ...
    from_top: usize,
}

impl QuantileEstimator {
    /// Creates an estimator over `n` samples returning the `p`-th quantile,
    /// with `p` expressed as in the paper (`p = (n − j)/n`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `p` is outside `(0, 1]`.
    pub fn new(n: usize, p: f64) -> QuantileEstimator {
        assert!(n > 0, "window must be non-empty");
        assert!(p > 0.0 && p <= 1.0, "quantile p={p} outside (0, 1]");
        let j = ((1.0 - p) * n as f64).round() as usize;
        QuantileEstimator {
            window: VecDeque::with_capacity(n),
            n,
            from_top: j.min(n - 1),
        }
    }

    /// The paper's default: second maximum over 16 samples (`p = 0.9375`).
    pub fn paper_default() -> QuantileEstimator {
        QuantileEstimator::new(16, 0.9375)
    }

    /// A pure maximum estimator (`p = 1`).
    pub fn max_of(n: usize) -> QuantileEstimator {
        QuantileEstimator::new(n, 1.0)
    }

    /// Number of samples currently in the window.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// Returns `true` if no samples were observed yet.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }
}

impl Predictor for QuantileEstimator {
    fn observe(&mut self, sample: Dur) {
        if self.window.len() == self.n {
            self.window.pop_front();
        }
        self.window.push_back(sample);
    }

    fn predict(&self) -> Option<Dur> {
        if self.window.is_empty() {
            return None;
        }
        let mut sorted: Vec<Dur> = self.window.iter().copied().collect();
        sorted.sort_unstable_by(|a, b| b.cmp(a)); // descending
        let idx = self.from_top.min(sorted.len() - 1);
        Some(sorted[idx])
    }

    fn reset(&mut self) {
        self.window.clear();
    }
}

/// Exponentially weighted moving average predictor (ablation).
#[derive(Debug, Clone)]
pub struct EwmaEstimator {
    alpha: f64,
    value: Option<f64>,
}

impl EwmaEstimator {
    /// Creates an EWMA with smoothing factor `alpha` (weight of the newest
    /// sample).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> EwmaEstimator {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha {alpha} outside (0, 1]");
        EwmaEstimator { alpha, value: None }
    }
}

impl Predictor for EwmaEstimator {
    fn observe(&mut self, sample: Dur) {
        let s = sample.as_secs_f64();
        self.value = Some(match self.value {
            None => s,
            Some(v) => self.alpha * s + (1.0 - self.alpha) * v,
        });
    }

    fn predict(&self) -> Option<Dur> {
        self.value.map(Dur::from_secs_f64)
    }

    fn reset(&mut self) {
        self.value = None;
    }
}

/// Mean plus `k` standard deviations over a sliding window (ablation).
#[derive(Debug, Clone)]
pub struct MeanSigmaEstimator {
    window: VecDeque<Dur>,
    n: usize,
    k: f64,
}

impl MeanSigmaEstimator {
    /// Creates a mean+kσ estimator over `n` samples.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `k` is negative.
    pub fn new(n: usize, k: f64) -> MeanSigmaEstimator {
        assert!(n > 0 && k >= 0.0);
        MeanSigmaEstimator {
            window: VecDeque::with_capacity(n),
            n,
            k,
        }
    }
}

impl Predictor for MeanSigmaEstimator {
    fn observe(&mut self, sample: Dur) {
        if self.window.len() == self.n {
            self.window.pop_front();
        }
        self.window.push_back(sample);
    }

    fn predict(&self) -> Option<Dur> {
        if self.window.is_empty() {
            return None;
        }
        let xs: Vec<f64> = self.window.iter().map(|d| d.as_secs_f64()).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = if xs.len() > 1 {
            xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64
        } else {
            0.0
        };
        Some(Dur::from_secs_f64((mean + self.k * var.sqrt()).max(0.0)))
    }

    fn reset(&mut self) {
        self.window.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Dur {
        Dur::ms(v)
    }

    #[test]
    fn quantile_max_returns_max() {
        let mut q = QuantileEstimator::max_of(4);
        for v in [3, 7, 5, 2] {
            q.observe(ms(v));
        }
        assert_eq!(q.predict(), Some(ms(7)));
    }

    #[test]
    fn paper_default_is_second_max_of_16() {
        let mut q = QuantileEstimator::paper_default();
        for v in 1..=16 {
            q.observe(ms(v));
        }
        assert_eq!(q.predict(), Some(ms(15)));
    }

    #[test]
    fn window_slides() {
        let mut q = QuantileEstimator::max_of(3);
        for v in [10, 1, 2, 3] {
            q.observe(ms(v));
        }
        // The 10 fell out of the window.
        assert_eq!(q.predict(), Some(ms(3)));
    }

    #[test]
    fn empty_predicts_none() {
        let q = QuantileEstimator::paper_default();
        assert_eq!(q.predict(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn partial_window_clamps_rank() {
        let mut q = QuantileEstimator::new(16, 0.5); // 8th from top
        q.observe(ms(4));
        q.observe(ms(9));
        // Only two samples: rank clamps to the smallest.
        assert_eq!(q.predict(), Some(ms(4)));
    }

    #[test]
    fn reset_clears() {
        let mut q = QuantileEstimator::max_of(4);
        q.observe(ms(5));
        q.reset();
        assert_eq!(q.predict(), None);
    }

    #[test]
    fn ewma_converges_towards_constant() {
        let mut e = EwmaEstimator::new(0.25);
        for _ in 0..50 {
            e.observe(ms(8));
        }
        let p = e.predict().unwrap();
        assert!((p.as_ms_f64() - 8.0).abs() < 0.01);
    }

    #[test]
    fn ewma_tracks_step_change_gradually() {
        let mut e = EwmaEstimator::new(0.5);
        e.observe(ms(10));
        e.observe(ms(20));
        let p = e.predict().unwrap().as_ms_f64();
        assert!((p - 15.0).abs() < 1e-9, "p = {p}");
    }

    #[test]
    fn mean_sigma_adds_margin() {
        let mut m = MeanSigmaEstimator::new(8, 2.0);
        for v in [10, 12, 10, 12] {
            m.observe(ms(v));
        }
        let p = m.predict().unwrap().as_ms_f64();
        assert!(p > 11.0, "p = {p}"); // mean 11 + 2σ
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn invalid_quantile_panics() {
        let _ = QuantileEstimator::new(16, 0.0);
    }
}
