//! # selftune-core
//!
//! The self-tuning machinery of *"Self-tuning Schedulers for Legacy
//! Real-Time Applications"* (EuroSys 2010): the paper's primary
//! contribution, assembled from the substrate crates.
//!
//! * [`predictor`] — per-job cost predictors (the paper's quantile
//!   estimator, plus EWMA and mean+kσ ablations).
//! * [`lfspp`] — the LFS++ feedback law: `Q_req = (1+x)·P(c₁..c_N)`,
//!   `T^s = P` (Section 4.4).
//! * [`lfs`] — the original binary-sensor LFS baseline (\[2\]).
//! * [`controller`] — per-task controller: period analyser + feedback.
//! * [`manager`] — the user-space daemon: drains the tracer, drives the
//!   controllers, executes decisions and submits requests to the
//!   supervisor.
//! * [`share`] — the reusable controller plane: [`DemandSignal`],
//!   [`Hysteresis`] and the [`ShareController`] feedback law shared by
//!   the task-level loop and `selftune-virt`'s VM-level share adaptation.

pub mod controller;
pub mod lfs;
pub mod lfspp;
pub mod manager;
pub mod predictor;
pub mod share;

pub use controller::{ControllerConfig, ControllerInput, Decision, FeedbackKind, TaskController};
pub use lfs::{Lfs, LfsConfig};
pub use lfspp::{BudgetRequest, LfsPlusPlus, LfsPpConfig};
pub use manager::{ManagerConfig, SelfTuningManager};
pub use predictor::{EwmaEstimator, MeanSigmaEstimator, Predictor, QuantileEstimator};
pub use share::{
    ClampReason, DemandSignal, Hysteresis, PeriodAdapter, ShareController, ShareControllerConfig,
    ShareDecision, ShareTrace,
};
