//! Elastic VM shares: the host-level instance of the paper's feedback
//! loop.
//!
//! PR 4's virtual platforms admit VM shares statically: a tenant whose
//! measured demand shrinks keeps hoarding host bandwidth, and a tenant
//! whose demand grows compresses its own guests even when the host has
//! slack. [`VmShareController`] closes the same loop one level up — each
//! control period it folds what the VM *measurably* did (share
//! consumption, the guest manager's booked reservations, compression
//! events inside the tenant) into a
//! [`selftune_core::share::ShareController`] and decides whether to
//! re-request the host share through
//! [`VirtPlatform::request_vm_share`](crate::VirtPlatform::request_vm_share).
//!
//! The controller is pure decision logic, exactly like the task-level
//! [`selftune_core::TaskController`]: the platform feeds it a
//! [`VmObservation`] and executes the resulting request (the host
//! supervisor may still compress the grant, and the grant is propagated
//! down into the guest manager's bound). Keeping kernel access out of
//! this type makes the host-level law unit testable in isolation.

use selftune_core::share::{
    DemandSignal, PeriodAdapter, ShareController, ShareControllerConfig, ShareDecision, ShareTrace,
};
use selftune_simcore::time::{Dur, Time};

/// Bounds of an adapted share period (seconds): no share replenishes
/// faster than 1 ms or slower than 500 ms, whatever the guests report.
const ADAPTED_PERIOD_MIN: f64 = 0.001;
const ADAPTED_PERIOD_MAX: f64 = 0.5;

/// Configuration of one VM's elastic-share loop.
#[derive(Clone, Copy, Debug)]
pub struct VmElasticConfig {
    /// How often the share is reconsidered. Defaults to 500 ms — one
    /// manager sampling period, so the guest loop gets a fresh sample
    /// between host-level decisions (the paper's remark against `S = P`
    /// applies across levels too).
    pub control_period: Dur,
    /// The share feedback law. `max_share` is additionally clamped to the
    /// host supervisor's bound at attach time, so an elastic VM can never
    /// request its way past what the node could grant anyone.
    pub controller: ShareControllerConfig,
    /// Share-*period* adaptation (the paper's `T^s = P` rule one level
    /// up): when enabled, the share period tracks the dominant detected
    /// guest period through a [`PeriodAdapter`] sharing the controller's
    /// deadband/confirmation settings, so outer replenishment aligns with
    /// inner deadlines instead of beating against them. Off by default —
    /// re-parameterising the host server is a behaviour change existing
    /// fleets must opt into.
    pub adapt_period: bool,
}

impl Default for VmElasticConfig {
    fn default() -> Self {
        VmElasticConfig {
            control_period: Dur::ms(500),
            controller: ShareControllerConfig::default(),
            adapt_period: false,
        }
    }
}

/// What the platform observed about one VM since the previous control
/// step.
#[derive(Clone, Copy, Debug, Default)]
pub struct VmObservation {
    /// The share currently granted, `Q/T`.
    pub granted: f64,
    /// Bandwidth the guest manager's inner reservations hold (0 for
    /// guests without a manager).
    pub booked: f64,
    /// Share consumption since the previous step.
    pub consumed_delta: Dur,
    /// Wall (virtual) time since the previous step.
    pub elapsed: Dur,
    /// Guest-supervisor compressions since the previous step.
    pub compressions_delta: u64,
    /// The dominant period the guest manager currently detects across its
    /// tasks (`None` while detection runs, or for manager-less guests).
    /// Only consulted when [`VmElasticConfig::adapt_period`] is on.
    pub dominant_period: Option<Dur>,
}

/// The per-VM share controller (see the module docs).
#[derive(Clone, Debug)]
pub struct VmShareController {
    cfg: VmElasticConfig,
    ctl: ShareController,
    /// Share-period adaptation state; `Some` iff `cfg.adapt_period`.
    periods: Option<PeriodAdapter>,
    /// Instant of the next control step.
    next_at: Time,
    /// Decisions that actually re-requested the share.
    rerequests: u64,
}

impl VmShareController {
    /// Creates a controller; the first control step is due one control
    /// period after `now`.
    pub fn new(cfg: VmElasticConfig, now: Time) -> VmShareController {
        assert!(
            !cfg.control_period.is_zero(),
            "control period must be positive"
        );
        let periods = cfg.adapt_period.then(|| {
            PeriodAdapter::new(
                cfg.controller.hysteresis,
                cfg.controller.confirmations,
                ADAPTED_PERIOD_MIN,
                ADAPTED_PERIOD_MAX,
            )
        });
        VmShareController {
            cfg,
            ctl: ShareController::new(cfg.controller),
            periods,
            next_at: now + cfg.control_period,
            rerequests: 0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &VmElasticConfig {
        &self.cfg
    }

    /// The smoothed demand estimate, if any sample arrived yet.
    pub fn demand(&self) -> Option<f64> {
        self.ctl.demand()
    }

    /// The current hysteresis-adopted share target, if any.
    pub fn target(&self) -> Option<f64> {
        self.ctl.target()
    }

    /// How many control steps re-requested the share so far.
    pub fn rerequests(&self) -> u64 {
        self.rerequests
    }

    /// The adapted share period, if period adaptation is on and an
    /// observation has been adopted: the period a re-requested share
    /// should use instead of the server's current one.
    pub fn share_period(&self) -> Option<Dur> {
        let secs = self.periods.as_ref()?.period()?;
        Some(Dur::secs(1).mul_f64(secs))
    }

    /// Whether a control step is due at `now`.
    pub fn due(&self, now: Time) -> bool {
        now >= self.next_at
    }

    /// One control step: folds the observation and decides the share to
    /// re-request, if any. The caller (the platform) executes the request
    /// through the host supervisor and feeds the resulting grant back via
    /// the next observation.
    pub fn step(&mut self, obs: &VmObservation, now: Time) -> ShareDecision {
        self.step_traced(obs, now).0
    }

    /// [`VmShareController::step`] plus the [`ShareTrace`] a decision
    /// journal records alongside the decision.
    pub fn step_traced(&mut self, obs: &VmObservation, now: Time) -> (ShareDecision, ShareTrace) {
        self.next_at = now + self.cfg.control_period;
        if let (Some(pa), Some(dom)) = (self.periods.as_mut(), obs.dominant_period) {
            pa.observe(dom.as_secs_f64());
        }
        let consumed_bw = if obs.elapsed.is_zero() {
            0.0
        } else {
            obs.consumed_delta.ratio(obs.elapsed)
        };
        let (decision, trace) = self.ctl.step_traced(&DemandSignal {
            consumed_bw,
            booked_bw: obs.booked,
            granted_bw: obs.granted,
            compressions: obs.compressions_delta,
        });
        if matches!(decision, ShareDecision::Request(_)) {
            self.rerequests += 1;
        }
        (decision, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(granted: f64, booked: f64, consumed_ms: u64, compressions: u64) -> VmObservation {
        VmObservation {
            granted,
            booked,
            consumed_delta: Dur::ms(consumed_ms),
            elapsed: Dur::ms(500),
            compressions_delta: compressions,
            dominant_period: None,
        }
    }

    #[test]
    fn share_period_tracks_the_dominant_guest_period_when_enabled() {
        let cfg = VmElasticConfig {
            adapt_period: true,
            ..VmElasticConfig::default()
        };
        let mut c = VmShareController::new(cfg, Time::ZERO);
        assert_eq!(c.share_period(), None);
        let mut o = obs(0.3, 0.3, 100, 0);
        o.dominant_period = Some(Dur::ms(40));
        let mut at = Time::ZERO;
        // Default confirmations = 2 after the immediate first adoption.
        for _ in 0..3 {
            at += Dur::ms(500);
            let _ = c.step(&o, at);
        }
        assert_eq!(c.share_period(), Some(Dur::ms(40)));
        // Guests re-tune to 100 ms; the adapter follows after confirming.
        o.dominant_period = Some(Dur::ms(100));
        for _ in 0..3 {
            at += Dur::ms(500);
            let _ = c.step(&o, at);
        }
        assert_eq!(c.share_period(), Some(Dur::ms(100)));
        // Off by default: the same observations leave the period alone.
        let mut plain = VmShareController::new(VmElasticConfig::default(), Time::ZERO);
        let _ = plain.step(&o, Time::ZERO + Dur::ms(500));
        assert_eq!(plain.share_period(), None);
    }

    #[test]
    fn schedules_itself_on_the_control_period() {
        let mut c = VmShareController::new(VmElasticConfig::default(), Time::ZERO);
        assert!(!c.due(Time::ZERO));
        let t1 = Time::ZERO + Dur::ms(500);
        assert!(c.due(t1));
        let _ = c.step(&obs(0.3, 0.2, 100, 0), t1);
        assert!(!c.due(t1));
        assert!(c.due(t1 + Dur::ms(500)));
    }

    #[test]
    fn compressed_tenant_grows_idle_tenant_shrinks() {
        let cfg = VmElasticConfig {
            controller: ShareControllerConfig {
                confirmations: 1,
                ..ShareControllerConfig::default()
            },
            ..VmElasticConfig::default()
        };
        let mut hungry = VmShareController::new(cfg, Time::ZERO);
        let t = Time::ZERO + Dur::secs(1);
        // A tenant saturating its 0.3 share (compressions inside): grow.
        match hungry.step(&obs(0.3, 0.3, 150, 3), t) {
            ShareDecision::Request(s) => assert!(s > 0.3, "grew to {s}"),
            other => panic!("expected growth, got {other:?}"),
        }
        assert_eq!(hungry.rerequests(), 1);

        // A tenant burning ~nothing with nothing booked: shrink.
        let mut idle = VmShareController::new(cfg, Time::ZERO);
        let mut last = None;
        for i in 0..10 {
            let at = Time::ZERO + Dur::ms(500 * (i + 1));
            if let ShareDecision::Request(s) = idle.step(&obs(0.4, 0.01, 2, 0), at) {
                last = Some(s);
            }
        }
        let s = last.expect("idle tenant must shed its share");
        assert!(s < 0.1, "shrunk to {s}");
    }
}
