//! Elastic VM shares: the host-level instance of the paper's feedback
//! loop.
//!
//! PR 4's virtual platforms admit VM shares statically: a tenant whose
//! measured demand shrinks keeps hoarding host bandwidth, and a tenant
//! whose demand grows compresses its own guests even when the host has
//! slack. [`VmShareController`] closes the same loop one level up — each
//! control period it folds what the VM *measurably* did (share
//! consumption, the guest manager's booked reservations, compression
//! events inside the tenant) into a
//! [`selftune_core::share::ShareController`] and decides whether to
//! re-request the host share through
//! [`VirtPlatform::request_vm_share`](crate::VirtPlatform::request_vm_share).
//!
//! The controller is pure decision logic, exactly like the task-level
//! [`selftune_core::TaskController`]: the platform feeds it a
//! [`VmObservation`] and executes the resulting request (the host
//! supervisor may still compress the grant, and the grant is propagated
//! down into the guest manager's bound). Keeping kernel access out of
//! this type makes the host-level law unit testable in isolation.

use selftune_core::share::{
    DemandSignal, ShareController, ShareControllerConfig, ShareDecision, ShareTrace,
};
use selftune_simcore::time::{Dur, Time};

/// Configuration of one VM's elastic-share loop.
#[derive(Clone, Copy, Debug)]
pub struct VmElasticConfig {
    /// How often the share is reconsidered. Defaults to 500 ms — one
    /// manager sampling period, so the guest loop gets a fresh sample
    /// between host-level decisions (the paper's remark against `S = P`
    /// applies across levels too).
    pub control_period: Dur,
    /// The share feedback law. `max_share` is additionally clamped to the
    /// host supervisor's bound at attach time, so an elastic VM can never
    /// request its way past what the node could grant anyone.
    pub controller: ShareControllerConfig,
}

impl Default for VmElasticConfig {
    fn default() -> Self {
        VmElasticConfig {
            control_period: Dur::ms(500),
            controller: ShareControllerConfig::default(),
        }
    }
}

/// What the platform observed about one VM since the previous control
/// step.
#[derive(Clone, Copy, Debug, Default)]
pub struct VmObservation {
    /// The share currently granted, `Q/T`.
    pub granted: f64,
    /// Bandwidth the guest manager's inner reservations hold (0 for
    /// guests without a manager).
    pub booked: f64,
    /// Share consumption since the previous step.
    pub consumed_delta: Dur,
    /// Wall (virtual) time since the previous step.
    pub elapsed: Dur,
    /// Guest-supervisor compressions since the previous step.
    pub compressions_delta: u64,
}

/// The per-VM share controller (see the module docs).
#[derive(Clone, Debug)]
pub struct VmShareController {
    cfg: VmElasticConfig,
    ctl: ShareController,
    /// Instant of the next control step.
    next_at: Time,
    /// Decisions that actually re-requested the share.
    rerequests: u64,
}

impl VmShareController {
    /// Creates a controller; the first control step is due one control
    /// period after `now`.
    pub fn new(cfg: VmElasticConfig, now: Time) -> VmShareController {
        assert!(
            !cfg.control_period.is_zero(),
            "control period must be positive"
        );
        VmShareController {
            cfg,
            ctl: ShareController::new(cfg.controller),
            next_at: now + cfg.control_period,
            rerequests: 0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &VmElasticConfig {
        &self.cfg
    }

    /// The smoothed demand estimate, if any sample arrived yet.
    pub fn demand(&self) -> Option<f64> {
        self.ctl.demand()
    }

    /// The current hysteresis-adopted share target, if any.
    pub fn target(&self) -> Option<f64> {
        self.ctl.target()
    }

    /// How many control steps re-requested the share so far.
    pub fn rerequests(&self) -> u64 {
        self.rerequests
    }

    /// Whether a control step is due at `now`.
    pub fn due(&self, now: Time) -> bool {
        now >= self.next_at
    }

    /// One control step: folds the observation and decides the share to
    /// re-request, if any. The caller (the platform) executes the request
    /// through the host supervisor and feeds the resulting grant back via
    /// the next observation.
    pub fn step(&mut self, obs: &VmObservation, now: Time) -> ShareDecision {
        self.step_traced(obs, now).0
    }

    /// [`VmShareController::step`] plus the [`ShareTrace`] a decision
    /// journal records alongside the decision.
    pub fn step_traced(&mut self, obs: &VmObservation, now: Time) -> (ShareDecision, ShareTrace) {
        self.next_at = now + self.cfg.control_period;
        let consumed_bw = if obs.elapsed.is_zero() {
            0.0
        } else {
            obs.consumed_delta.ratio(obs.elapsed)
        };
        let (decision, trace) = self.ctl.step_traced(&DemandSignal {
            consumed_bw,
            booked_bw: obs.booked,
            granted_bw: obs.granted,
            compressions: obs.compressions_delta,
        });
        if matches!(decision, ShareDecision::Request(_)) {
            self.rerequests += 1;
        }
        (decision, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(granted: f64, booked: f64, consumed_ms: u64, compressions: u64) -> VmObservation {
        VmObservation {
            granted,
            booked,
            consumed_delta: Dur::ms(consumed_ms),
            elapsed: Dur::ms(500),
            compressions_delta: compressions,
        }
    }

    #[test]
    fn schedules_itself_on_the_control_period() {
        let mut c = VmShareController::new(VmElasticConfig::default(), Time::ZERO);
        assert!(!c.due(Time::ZERO));
        let t1 = Time::ZERO + Dur::ms(500);
        assert!(c.due(t1));
        let _ = c.step(&obs(0.3, 0.2, 100, 0), t1);
        assert!(!c.due(t1));
        assert!(c.due(t1 + Dur::ms(500)));
    }

    #[test]
    fn compressed_tenant_grows_idle_tenant_shrinks() {
        let cfg = VmElasticConfig {
            controller: ShareControllerConfig {
                confirmations: 1,
                ..ShareControllerConfig::default()
            },
            ..VmElasticConfig::default()
        };
        let mut hungry = VmShareController::new(cfg, Time::ZERO);
        let t = Time::ZERO + Dur::secs(1);
        // A tenant saturating its 0.3 share (compressions inside): grow.
        match hungry.step(&obs(0.3, 0.3, 150, 3), t) {
            ShareDecision::Request(s) => assert!(s > 0.3, "grew to {s}"),
            other => panic!("expected growth, got {other:?}"),
        }
        assert_eq!(hungry.rerequests(), 1);

        // A tenant burning ~nothing with nothing booked: shrink.
        let mut idle = VmShareController::new(cfg, Time::ZERO);
        let mut last = None;
        for i in 0..10 {
            let at = Time::ZERO + Dur::ms(500 * (i + 1));
            if let ShareDecision::Request(s) = idle.step(&obs(0.4, 0.01, 2, 0), at) {
                last = Some(s);
            }
        }
        let s = last.expect("idle tenant must shed its share");
        assert!(s < 0.1, "shrunk to {s}");
    }
}
