//! The two-level scheduler: host CBS servers that contain guest schedulers.
//!
//! [`VirtScheduler`] implements the kernel's [`Scheduler`] contract by
//! stacking two dispatch levels:
//!
//! * **Host level** — a plain [`ReservationScheduler`]. Every virtual
//!   machine is one CBS server in it (its *share* of the physical CPU);
//!   tasks not assigned to any VM live directly in the host's classes
//!   exactly as on a non-virtualised node.
//! * **Guest level** — each VM owns a guest scheduler
//!   ([`EdfScheduler`], [`FixedPriority`] or a full nested
//!   [`ReservationScheduler`]) over that VM's task set.
//!
//! Dispatch walks the host's runnable servers in EDF order (via
//! [`ReservationScheduler::pick_with`]); a VM server's task choice is
//! delegated to its guest scheduler instead of the server's own FIFO. A
//! guest may *decline* (a nested reservation scheduler whose inner servers
//! are all throttled), in which case the next host server in deadline
//! order gets the CPU. Guest runtime is charged to **both** levels: the
//! host server (depleting the VM's share — two-level CBS) and the guest
//! scheduler (depleting the inner reservation of the running task).
//!
//! With no VMs created, every call delegates straight to the host
//! scheduler — a virtualised kernel with zero VMs behaves bit-identically
//! to a flat one.

use selftune_sched::{EdfScheduler, FixedPriority, ReservationScheduler, ServerConfig, ServerId};
use selftune_sched::{Place, Server};
use selftune_simcore::scheduler::Scheduler;
use selftune_simcore::task::TaskId;
use selftune_simcore::time::{Dur, Time};
use std::cell::Cell;

/// Identifier of a virtual machine within one [`VirtScheduler`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct VmId(pub u32);

impl VmId {
    /// Index into dense per-VM arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl core::fmt::Display for VmId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "vm{}", self.0)
    }
}

/// The scheduler running *inside* one VM, over that VM's tasks.
pub enum GuestSched {
    /// Task-level EDF with per-task relative deadlines.
    Edf(EdfScheduler),
    /// Preemptive fixed priority.
    FixedPriority(FixedPriority),
    /// A nested reservation scheduler — inner CBS servers inside the
    /// VM's share, the configuration per-guest self-tuning manages.
    Reservation(ReservationScheduler),
}

impl GuestSched {
    fn as_scheduler_mut(&mut self) -> &mut dyn Scheduler {
        match self {
            GuestSched::Edf(s) => s,
            GuestSched::FixedPriority(s) => s,
            GuestSched::Reservation(s) => s,
        }
    }

    fn as_scheduler(&self) -> &dyn Scheduler {
        match self {
            GuestSched::Edf(s) => s,
            GuestSched::FixedPriority(s) => s,
            GuestSched::Reservation(s) => s,
        }
    }
}

struct VmEntry {
    host_sid: ServerId,
    guest: GuestSched,
}

/// Two-level scheduler: host reservations containing guest schedulers.
///
/// # Dispatch caching
///
/// With VMs present every pick takes the host's
/// [`ReservationScheduler::pick_with`] path, whose sorted EDF order is
/// cached inside the host scheduler and validated against
/// [`ReservationScheduler::dispatch_epoch`] — any share transition
/// (wake/block/depletion/replenish, and supervisor re-grants including an
/// elastic controller's) bumps the epoch and forces a rescan. The stacked
/// `next_timer` is cached here the same way, keyed by the *sum* of the
/// host epoch and every nested reservation guest's epoch (EDF and
/// fixed-priority guests own no timers); epochs only grow, so the sum is
/// monotone and two concurrent changes cannot cancel out.
pub struct VirtScheduler {
    host: ReservationScheduler,
    vms: Vec<VmEntry>,
    /// VM membership, dense by task id (`None` = host-level task).
    vm_of: Vec<Option<u32>>,
    /// VM index, dense by host server id (`None` = plain host server),
    /// so the per-pick server-to-guest routing is an array read.
    vm_by_sid: Vec<Option<u32>>,
    /// Cached stacked timer: `(stack epoch it was computed at, value)`.
    timer_cache: Cell<Option<(u64, Option<Time>)>>,
}

impl Default for VirtScheduler {
    fn default() -> Self {
        VirtScheduler::new()
    }
}

impl VirtScheduler {
    /// A virtualised scheduler with the default host fair-class slice.
    pub fn new() -> VirtScheduler {
        VirtScheduler::with_host(ReservationScheduler::new())
    }

    /// Wraps an explicitly configured host reservation scheduler.
    pub fn with_host(host: ReservationScheduler) -> VirtScheduler {
        VirtScheduler {
            host,
            vms: Vec::new(),
            vm_of: Vec::new(),
            vm_by_sid: Vec::new(),
            timer_cache: Cell::new(None),
        }
    }

    /// The stacked dispatch version: host epoch plus every nested
    /// reservation guest's epoch. Guest schedulers without timers or
    /// budgets (EDF, fixed priority) cannot change the stacked timer or
    /// the host order, so they do not participate.
    fn stack_epoch(&self) -> u64 {
        let mut e = self.host.dispatch_epoch();
        for v in &self.vms {
            if let GuestSched::Reservation(g) = &v.guest {
                e = e.wrapping_add(g.dispatch_epoch());
            }
        }
        e
    }

    /// The host-level reservation scheduler (flat tasks, VM shares).
    pub fn host(&self) -> &ReservationScheduler {
        &self.host
    }

    /// Mutable host access — how a host-level self-tuning manager creates
    /// and adjusts flat reservations alongside the VM shares.
    pub fn host_mut(&mut self) -> &mut ReservationScheduler {
        &mut self.host
    }

    /// Number of VMs created.
    pub fn vm_count(&self) -> usize {
        self.vms.len()
    }

    /// Creates a VM: one host CBS server with the given configuration,
    /// containing `guest`. Returns its id.
    pub fn create_vm(&mut self, share: ServerConfig, guest: GuestSched) -> VmId {
        let host_sid = self.host.create_server(share);
        let id = VmId(self.vms.len() as u32);
        if self.vm_by_sid.len() <= host_sid.index() {
            self.vm_by_sid.resize(host_sid.index() + 1, None);
        }
        self.vm_by_sid[host_sid.index()] = Some(id.0);
        self.vms.push(VmEntry { host_sid, guest });
        id
    }

    /// The host server backing a VM's share.
    pub fn vm_server_id(&self, vm: VmId) -> ServerId {
        self.vms[vm.index()].host_sid
    }

    /// Read access to the host server backing a VM's share.
    pub fn vm_server(&self, vm: VmId) -> &Server {
        self.host.server(self.vms[vm.index()].host_sid)
    }

    /// The guest scheduler of a VM.
    pub fn guest(&self, vm: VmId) -> &GuestSched {
        &self.vms[vm.index()].guest
    }

    /// Mutable access to the guest scheduler of a VM.
    pub fn guest_mut(&mut self, vm: VmId) -> &mut GuestSched {
        &mut self.vms[vm.index()].guest
    }

    /// The nested reservation scheduler of a self-tuning VM — the
    /// projection a per-guest [`selftune_core::SelfTuningManager`] steps
    /// against.
    ///
    /// # Panics
    ///
    /// Panics if the VM's guest is not [`GuestSched::Reservation`].
    pub fn guest_reservations_mut(&mut self, vm: VmId) -> &mut ReservationScheduler {
        match &mut self.vms[vm.index()].guest {
            GuestSched::Reservation(s) => s,
            _ => panic!("{vm} has no nested reservation scheduler"),
        }
    }

    /// Assigns a task to a VM: the task dispatches through the VM's host
    /// server and its guest scheduler from now on. Must happen before the
    /// task first becomes ready.
    pub fn assign(&mut self, task: TaskId, vm: VmId) {
        let sid = self.vms[vm.index()].host_sid;
        self.host.place(task, Place::Server(sid));
        if self.vm_of.len() <= task.index() {
            self.vm_of.resize(task.index() + 1, None);
        }
        self.vm_of[task.index()] = Some(vm.0);
    }

    /// The VM a task belongs to, if any.
    pub fn vm_of(&self, task: TaskId) -> Option<VmId> {
        self.vm_of.get(task.index()).copied().flatten().map(VmId)
    }

    /// Shrinks a VM's share to the admission floor — the release half of
    /// killing a VM (the platform kills the guest tasks first). The VM
    /// entry stays (ids are stable) but holds no meaningful bandwidth.
    pub fn release_vm(&mut self, vm: VmId) {
        let sid = self.vms[vm.index()].host_sid;
        let period = self.host.server(sid).config().period;
        self.host.server_mut(sid).set_params(Dur::us(10), period);
    }
}

impl Scheduler for VirtScheduler {
    fn on_ready(&mut self, task: TaskId, now: Time) {
        self.host.on_ready(task, now);
        if let Some(vm) = self.vm_of(task) {
            self.vms[vm.index()]
                .guest
                .as_scheduler_mut()
                .on_ready(task, now);
        }
    }

    fn on_block(&mut self, task: TaskId, now: Time) {
        self.host.on_block(task, now);
        if let Some(vm) = self.vm_of(task) {
            self.vms[vm.index()]
                .guest
                .as_scheduler_mut()
                .on_block(task, now);
        }
    }

    fn on_exit(&mut self, task: TaskId, now: Time) {
        self.host.on_exit(task, now);
        if let Some(vm) = self.vm_of(task) {
            self.vms[vm.index()]
                .guest
                .as_scheduler_mut()
                .on_exit(task, now);
        }
    }

    fn charge(&mut self, task: TaskId, ran: Dur, now: Time) {
        // Two-level accounting: the VM's share and the guest's inner
        // reservation both pay for the same runtime.
        self.host.charge(task, ran, now);
        if let Some(vm) = self.vm_of(task) {
            self.vms[vm.index()]
                .guest
                .as_scheduler_mut()
                .charge(task, ran, now);
        }
    }

    fn pick(&mut self, now: Time) -> Option<TaskId> {
        if self.vms.is_empty() {
            return self.host.pick(now);
        }
        let vms = &mut self.vms;
        let vm_by_sid = &self.vm_by_sid;
        self.host.pick_with(now, |sid, srv| {
            match vm_by_sid.get(sid.index()).copied().flatten() {
                Some(v) => vms[v as usize].guest.as_scheduler_mut().pick(now),
                None => srv.front_task(),
            }
        })
    }

    fn horizon(&self, task: TaskId, now: Time) -> Option<Dur> {
        let host = self.host.horizon(task, now);
        match self.vm_of(task) {
            None => host,
            Some(vm) => {
                let guest = self.vms[vm.index()].guest.as_scheduler().horizon(task, now);
                match (host, guest) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (h, g) => h.or(g),
                }
            }
        }
    }

    fn next_timer(&self, now: Time) -> Option<Time> {
        if self.vms.is_empty() {
            return self.host.next_timer(now);
        }
        let cached = !self.host.uses_scan_dispatch();
        let epoch = self.stack_epoch();
        if cached {
            if let Some((e, t)) = self.timer_cache.get() {
                if e == epoch {
                    return t;
                }
            }
        }
        let mut next = self.host.next_timer(now);
        for v in &self.vms {
            let t = v.guest.as_scheduler().next_timer(now);
            next = match (next, t) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (n, t) => n.or(t),
            };
        }
        if cached {
            self.timer_cache.set(Some((epoch, next)));
        }
        next
    }

    fn on_timer(&mut self, now: Time) {
        self.host.on_timer(now);
        for v in &mut self.vms {
            v.guest.as_scheduler_mut().on_timer(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selftune_sched::ServerState;

    const T0: Time = Time::ZERO;

    fn t(ms: u64) -> Time {
        T0 + Dur::ms(ms)
    }

    fn two_vm_sched() -> (VirtScheduler, VmId, VmId) {
        let mut s = VirtScheduler::new();
        // VM a: 10ms/50ms share, EDF guest. VM b: 10ms/100ms share.
        let a = s.create_vm(
            ServerConfig::new(Dur::ms(10), Dur::ms(50)),
            GuestSched::Edf(EdfScheduler::new()),
        );
        let b = s.create_vm(
            ServerConfig::new(Dur::ms(10), Dur::ms(100)),
            GuestSched::Edf(EdfScheduler::new()),
        );
        (s, a, b)
    }

    #[test]
    fn host_edf_orders_vms_guest_edf_orders_tasks() {
        let (mut s, a, b) = two_vm_sched();
        if let GuestSched::Edf(e) = s.guest_mut(a) {
            e.set_relative_deadline(TaskId(1), Dur::ms(30));
            e.set_relative_deadline(TaskId(2), Dur::ms(10));
        }
        s.assign(TaskId(1), a);
        s.assign(TaskId(2), a);
        s.assign(TaskId(3), b);
        s.on_ready(TaskId(1), T0);
        s.on_ready(TaskId(2), T0);
        s.on_ready(TaskId(3), T0);
        // VM a's share has the earlier host deadline (50 < 100); inside it
        // the guest EDF prefers task 2 (10ms relative deadline).
        assert_eq!(s.pick(T0), Some(TaskId(2)));
        s.on_block(TaskId(2), t(2));
        assert_eq!(s.pick(t(2)), Some(TaskId(1)));
        s.on_block(TaskId(1), t(4));
        assert_eq!(s.pick(t(4)), Some(TaskId(3)));
    }

    #[test]
    fn guest_runtime_depletes_the_vm_share() {
        let (mut s, a, _b) = two_vm_sched();
        s.assign(TaskId(1), a);
        s.on_ready(TaskId(1), T0);
        assert_eq!(s.pick(T0), Some(TaskId(1)));
        assert_eq!(s.horizon(TaskId(1), T0), Some(Dur::ms(10)));
        s.charge(TaskId(1), Dur::ms(10), t(10));
        // The VM's host server throttles; nothing else runnable.
        assert_eq!(s.vm_server(a).state(), ServerState::Throttled);
        assert_eq!(s.pick(t(10)), None);
        assert_eq!(s.next_timer(t(10)), Some(t(50)));
        s.on_timer(t(50));
        assert_eq!(s.pick(t(50)), Some(TaskId(1)));
    }

    #[test]
    fn nested_reservations_charge_both_levels_and_can_decline() {
        let mut s = VirtScheduler::new();
        let mut guest = ReservationScheduler::new();
        let inner = guest.create_server(ServerConfig::new(Dur::ms(2), Dur::ms(20)));
        guest.place(TaskId(1), Place::Server(inner));
        let vm = s.create_vm(
            ServerConfig::new(Dur::ms(30), Dur::ms(60)),
            GuestSched::Reservation(guest),
        );
        // A host-level fair task exists alongside the VM.
        s.on_ready(TaskId(9), T0);
        s.assign(TaskId(1), vm);
        s.on_ready(TaskId(1), T0);
        assert_eq!(s.pick(T0), Some(TaskId(1)));
        // The horizon is the *inner* budget (2ms), tighter than the share.
        assert_eq!(s.horizon(TaskId(1), T0), Some(Dur::ms(2)));
        s.charge(TaskId(1), Dur::ms(2), t(2));
        // Inner server throttled: the guest declines although the VM share
        // still has budget — the host falls through to the fair task.
        assert_eq!(s.pick(t(2)), Some(TaskId(9)));
        // Both levels were charged.
        assert_eq!(s.vm_server(vm).remaining_budget(), Dur::ms(28));
        match s.guest(vm) {
            GuestSched::Reservation(g) => {
                assert_eq!(g.server(inner).remaining_budget(), Dur::ZERO);
            }
            _ => unreachable!(),
        }
        // The inner replenishment is visible through the stacked timer.
        assert_eq!(s.next_timer(t(2)), Some(t(20)));
        s.on_timer(t(20));
        assert_eq!(s.pick(t(20)), Some(TaskId(1)));
    }

    #[test]
    fn flat_tasks_run_exactly_as_without_virtualisation() {
        let mut s = VirtScheduler::new();
        let sid = s
            .host_mut()
            .create_server(ServerConfig::new(Dur::ms(5), Dur::ms(50)));
        s.host_mut().place(TaskId(1), Place::Server(sid));
        s.on_ready(TaskId(1), T0);
        s.on_ready(TaskId(2), T0); // fair
        assert_eq!(s.pick(T0), Some(TaskId(1)));
        s.charge(TaskId(1), Dur::ms(5), t(5));
        assert_eq!(s.pick(t(5)), Some(TaskId(2)));
        assert_eq!(s.next_timer(t(5)), Some(t(50)));
    }

    #[test]
    fn stacked_timer_cache_tracks_both_levels() {
        let mut s = VirtScheduler::new();
        let mut guest = ReservationScheduler::new();
        let inner = guest.create_server(ServerConfig::new(Dur::ms(2), Dur::ms(20)));
        guest.place(TaskId(1), Place::Server(inner));
        let vm = s.create_vm(
            ServerConfig::new(Dur::ms(30), Dur::ms(60)),
            GuestSched::Reservation(guest),
        );
        s.assign(TaskId(1), vm);
        s.on_ready(TaskId(1), T0);
        // No pending replenishment anywhere: cached None is stable.
        assert_eq!(s.next_timer(T0), None);
        assert_eq!(s.next_timer(T0), None);
        // Depleting the *inner* reservation arms a guest-level timer; the
        // stacked cache must notice the guest transition.
        s.charge(TaskId(1), Dur::ms(2), t(2));
        assert_eq!(s.next_timer(t(2)), Some(t(20)));
        assert_eq!(s.next_timer(t(2)), Some(t(20)));
        s.on_timer(t(20));
        assert_eq!(s.next_timer(t(20)), None);
        // Depleting the VM share arms a *host* timer through the same
        // cache: both levels invalidate it. (The inner server's deadline
        // already passed, so it replenishes immediately and owns no
        // pending timer; only the throttled share does.)
        s.charge(TaskId(1), Dur::ms(28), t(48));
        assert_eq!(s.next_timer(t(48)), Some(t(60)));
        assert_eq!(s.pick(t(48)), None, "share throttled");
        // A share re-grant (what an elastic controller does mid-run) also
        // invalidates: the budget increase lifts the throttle, and both
        // the cached order and the cached timer must notice.
        let sid = s.vm_server_id(vm);
        s.host_mut()
            .server_mut(sid)
            .set_params(Dur::ms(35), Dur::ms(60));
        assert_eq!(s.pick(t(48)), Some(TaskId(1)), "re-grant reopens dispatch");
    }

    #[test]
    fn release_vm_frees_the_share() {
        let (mut s, a, _b) = two_vm_sched();
        let before = s.host().total_reserved_bandwidth();
        s.release_vm(a);
        assert!(s.host().total_reserved_bandwidth() < before - 0.15);
    }
}
