//! # selftune-virt
//!
//! Hierarchical virtual platforms for the `selftune` reproduction of
//! *"Self-tuning Schedulers for Legacy Real-Time Applications"*
//! (EuroSys 2010): the paper's mechanism — CBS reservations whose budgets
//! are self-tuned from traced activation spectra — composed one level up,
//! the way the authors' follow-on IRMOS line deploys it for consolidated
//! and virtualised workloads.
//!
//! ## Architecture
//!
//! ```text
//!   Kernel<VirtScheduler>
//!        │
//!        ├── host ReservationScheduler ──── flat tasks (fair / FIFO /
//!        │     │                            own CBS servers, managed by
//!        │     │                            the host SelfTuningManager)
//!        │     ├── VM₀ share (CBS server) ─► guest scheduler (EDF / FP /
//!        │     │                             nested ReservationScheduler)
//!        │     │                               ▲ per-guest tracer +
//!        │     │                               │ SelfTuningManager
//!        │     └── VM₁ share (CBS server) ─► ...
//!        │
//!        └── host Supervisor: Σ shares + flat reservations ≤ U_lub
//! ```
//!
//! * [`sched`] — [`VirtScheduler`]: two-level dispatch (host EDF over VM
//!   shares, guest policy inside each share) with double charging — guest
//!   runtime depletes both the inner reservation and the VM share.
//! * [`platform`] — [`VirtPlatform`]: the runnable bundle. VM shares are
//!   admitted through the host [`selftune_sched::Supervisor`]; each
//!   self-tuning guest gets its own tracer (via [`TraceMux`]) and
//!   [`selftune_core::SelfTuningManager`] whose supervisor is clamped to
//!   the VM's share — compression under tenant overload stays inside the
//!   tenant.
//! * [`elastic`] — the host-level share loop: [`VmShareController`]
//!   re-requests each elastic VM's share from measured guest demand
//!   (bookings, consumption, compression events) through the host
//!   supervisor every control period, built on the reusable
//!   [`selftune_core::share`] controller plane.
//! * [`demo`] — the canonical two-tenant consolidation and elasticity
//!   scenarios backing the `vm_consolidation` / `vm_elasticity`
//!   experiments, examples and e2e tests.
//!
//! ## Why hierarchical
//!
//! On a flat node, one misbehaving legacy task inflates its bandwidth
//! request and the supervisor's proportional compression curbs *every*
//! task on the node. With virtual platforms, the host supervisor
//! arbitrates fixed shares *across* tenants while each tenant's manager
//! arbitrates *within* its share: a noisy neighbour can only melt itself.
//! The `vm_consolidation` e2e demonstrates both halves (isolation, and
//! completion throughput no worse than flat at equal total bandwidth).

pub mod demo;
pub mod elastic;
pub mod platform;
pub mod sched;

pub use elastic::{VmElasticConfig, VmObservation, VmShareController};
pub use platform::{
    GuestPolicy, ShareGrantEvent, TraceMux, VirtPlatform, VmAdmissionError, VmConfig,
};
pub use sched::{GuestSched, VirtScheduler, VmId};

/// One-stop imports for virtual-platform experiments.
pub mod prelude {
    pub use crate::elastic::{VmElasticConfig, VmObservation, VmShareController};
    pub use crate::platform::{
        GuestPolicy, ShareGrantEvent, VirtPlatform, VmAdmissionError, VmConfig,
    };
    pub use crate::sched::{GuestSched, VirtScheduler, VmId};
}
