//! The virtual-platform bundle: a host kernel running VM servers, each
//! with its own tracer and (optionally) its own self-tuning manager.
//!
//! [`VirtPlatform`] is the virtualised counterpart of the paper's
//! single-machine stack. The host side is unchanged — a kernel, a tracer
//! and a [`SelfTuningManager`] for host-level (non-VM) legacy tasks. Each
//! VM adds:
//!
//! * a **host CBS server** — the VM's CPU share, admitted through the
//!   *host* [`Supervisor`] exactly like any other reservation, so the
//!   host-level bound Σ Qᵢ/Tᵢ ≤ U_lub arbitrates bandwidth *across*
//!   tenants;
//! * a **guest scheduler** over the VM's own task set; and, for
//!   self-tuning guests,
//! * a **per-guest tracer + [`SelfTuningManager`]** whose supervisor is
//!   bounded by the VM's share — periods are detected and budgets adapted
//!   *inside* the VM, and compression under tenant overload curbs that
//!   tenant's tasks only.
//!
//! Syscall tracing is demultiplexed per VM by [`TraceMux`], so each guest
//! manager sees exactly its own tenant's event train — the virtualised
//! analogue of one `qtrace` device per machine.

use std::cell::RefCell;
use std::rc::Rc;

use selftune_core::share::{ClampReason, ShareDecision};
use selftune_core::{ControllerConfig, ManagerConfig, SelfTuningManager};
use selftune_sched::{
    BwRequest, EdfScheduler, FixedPriority, ReservationScheduler, Server, ServerConfig, Supervisor,
};
use selftune_simcore::kernel::{Kernel, SyscallHook};
use selftune_simcore::metrics::MetricKey;
use selftune_simcore::syscall::SyscallNr;
use selftune_simcore::task::{TaskId, Workload};
use selftune_simcore::time::{Dur, Time};
use selftune_tracer::{Tracer, TracerConfig, TracerHook};

use crate::elastic::{VmElasticConfig, VmObservation, VmShareController};
use crate::sched::{GuestSched, VirtScheduler, VmId};

/// The scheduling regime inside one VM.
#[derive(Clone, Debug)]
pub enum GuestPolicy {
    /// Task-level EDF (register deadlines via
    /// [`VirtPlatform::set_guest_deadline`]).
    Edf,
    /// Preemptive fixed priority (register priorities via
    /// [`VirtPlatform::set_guest_priority`]).
    FixedPriority,
    /// Nested CBS reservations driven by a per-guest self-tuning manager.
    /// The manager's supervisor bound is clamped to the VM's share — a
    /// tenant cannot self-tune its way past what the host granted.
    SelfTuning(ManagerConfig),
}

/// Static description of one VM.
#[derive(Clone, Debug)]
pub struct VmConfig {
    /// Label used in diagnostics.
    pub label: String,
    /// Share budget `Q` granted per share period.
    pub budget: Dur,
    /// Share period `T` (granularity of the VM's CPU supply).
    pub period: Dur,
    /// Guest scheduling regime.
    pub policy: GuestPolicy,
}

impl VmConfig {
    /// A self-tuning VM with the given share and default manager
    /// configuration (supervisor bound clamped to the share).
    pub fn self_tuning(label: &str, budget: Dur, period: Dur) -> VmConfig {
        VmConfig {
            label: label.to_owned(),
            budget,
            period,
            policy: GuestPolicy::SelfTuning(ManagerConfig::default()),
        }
    }

    /// The VM's share of the CPU, `Q/T`.
    pub fn share(&self) -> f64 {
        self.budget.ratio(self.period)
    }
}

/// Why a VM could not be created.
#[derive(Clone, Debug, PartialEq)]
pub enum VmAdmissionError {
    /// The host supervisor's bound cannot fit the requested share.
    Rejected {
        /// The requested share `Q/T`.
        requested: f64,
        /// Host bandwidth still unreserved under the bound.
        available: f64,
    },
}

impl core::fmt::Display for VmAdmissionError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            VmAdmissionError::Rejected {
                requested,
                available,
            } => write!(
                f,
                "VM share {requested:.3} rejected: only {available:.3} available"
            ),
        }
    }
}

/// One *executed* elastic share re-request, with the controller inputs
/// that pinned it — buffered by the platform for a decision journal to
/// drain via [`VirtPlatform::drain_share_grants`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ShareGrantEvent {
    /// When the control step ran.
    pub at: Time,
    /// The VM whose share moved.
    pub vm: VmId,
    /// The controller's smoothed demand estimate after this fold.
    pub demand: f64,
    /// The hysteresis-adopted target the platform requested.
    pub target: f64,
    /// The share the host supervisor actually granted.
    pub granted: f64,
    /// Whether the supervisor curbed the request.
    pub compressed: bool,
    /// Which controller bound clipped the request candidate.
    pub clamp: ClampReason,
    /// Unconfirmed hysteresis change after the step, if any.
    pub pending: Option<(f64, u32)>,
    /// Host bandwidth the request competed for (ulub − fixed).
    pub available: f64,
}

/// Routes syscall trace edges to the tracer of the task's VM (slot 0 is
/// the host tracer).
pub struct TraceMux {
    route: Rc<RefCell<Vec<u16>>>,
    hooks: Rc<RefCell<Vec<TracerHook>>>,
}

impl TraceMux {
    fn slot_of(&self, task: TaskId) -> usize {
        self.route.borrow().get(task.index()).copied().unwrap_or(0) as usize
    }
}

impl SyscallHook for TraceMux {
    fn on_enter(&mut self, task: TaskId, nr: SyscallNr, now: Time) -> Dur {
        let slot = self.slot_of(task);
        self.hooks.borrow_mut()[slot].on_enter(task, nr, now)
    }

    fn on_exit(&mut self, task: TaskId, nr: SyscallNr, now: Time) -> Dur {
        let slot = self.slot_of(task);
        self.hooks.borrow_mut()[slot].on_exit(task, nr, now)
    }

    fn on_wake(&mut self, task: TaskId, now: Time) -> Dur {
        let slot = self.slot_of(task);
        self.hooks.borrow_mut()[slot].on_wake(task, now)
    }
}

/// The elastic-share loop state of one VM: the controller plus the
/// last-seen cumulative sensors it differentiates.
struct ElasticRt {
    ctl: VmShareController,
    last_consumed: Dur,
    last_compressions: u64,
    last_at: Time,
    /// Interned `"<label>.share"` key for the granted-share series.
    share_key: Option<MetricKey>,
}

struct VmRuntime {
    label: String,
    mgr: Option<SelfTuningManager>,
    /// Trace-mux slot of this VM's tracer (0 = shares the host tracer,
    /// for guests without a manager).
    slot: u16,
    tasks: Vec<TaskId>,
    killed: bool,
    /// Present when the VM's host share is elastic.
    elastic: Option<ElasticRt>,
}

/// A host kernel running virtual machines (see the module docs).
pub struct VirtPlatform {
    kernel: Kernel<VirtScheduler>,
    cfg: ManagerConfig,
    host_mgr: SelfTuningManager,
    vms: Vec<VmRuntime>,
    route: Rc<RefCell<Vec<u16>>>,
    hooks: Rc<RefCell<Vec<TracerHook>>>,
    /// Executed elastic re-grants since the last drain (journal feed).
    share_events: Vec<ShareGrantEvent>,
}

impl VirtPlatform {
    /// Creates a platform. `cfg` configures the host side: the sampling
    /// period, the host supervisor (which admits both flat reservations
    /// and VM shares) and the CBS mode of host-level servers.
    pub fn new(cfg: ManagerConfig) -> VirtPlatform {
        let mut kernel = Kernel::new(VirtScheduler::new());
        let (host_hook, host_reader) = Tracer::create(TracerConfig::default());
        let route = Rc::new(RefCell::new(Vec::new()));
        let hooks = Rc::new(RefCell::new(vec![host_hook]));
        kernel.install_hook(Box::new(TraceMux {
            route: Rc::clone(&route),
            hooks: Rc::clone(&hooks),
        }));
        let host_mgr = SelfTuningManager::new(cfg.clone(), host_reader);
        VirtPlatform {
            kernel,
            cfg,
            host_mgr,
            vms: Vec::new(),
            route,
            hooks,
            share_events: Vec::new(),
        }
    }

    /// Creates a VM, admitting its share through the host supervisor.
    ///
    /// The share server is created at the admission floor and immediately
    /// parameterised through [`Supervisor::apply`] — the same path every
    /// task reservation takes, so the host bound arbitrates VM shares and
    /// flat reservations uniformly.
    ///
    /// # Errors
    ///
    /// [`VmAdmissionError::Rejected`] when the share does not fit under
    /// the host bound; nothing is created in that case. Use
    /// [`VirtPlatform::create_vm_curbed`] when a compressed share is
    /// acceptable.
    pub fn create_vm(&mut self, vm_cfg: VmConfig) -> Result<VmId, VmAdmissionError> {
        let requested = vm_cfg.share();
        if !self
            .cfg
            .supervisor
            .admits(self.kernel.sched().host(), vm_cfg.budget, vm_cfg.period)
        {
            let available = (self.cfg.supervisor.ulub
                - self.kernel.sched().host().total_reserved_bandwidth())
            .max(0.0);
            return Err(VmAdmissionError::Rejected {
                requested,
                available,
            });
        }
        Ok(self.create_vm_unchecked(vm_cfg))
    }

    /// Creates a VM like [`VirtPlatform::create_vm`], but never rejects:
    /// a share that does not fit is *compressed* to what the host bound
    /// allows (possibly down to the floor), exactly as an oversubscribed
    /// task grant would be. Returns the VM and its granted share `Q/T`.
    ///
    /// This is the live-migration admission path: the fleet rebalancer
    /// books destinations from its own model, which can drift from a
    /// node's self-tuned grants — a curbed landing beats a crashed node.
    pub fn create_vm_curbed(&mut self, vm_cfg: VmConfig) -> (VmId, f64) {
        let vm = self.create_vm_unchecked(vm_cfg);
        (vm, self.vm_share(vm))
    }

    fn create_vm_unchecked(&mut self, vm_cfg: VmConfig) -> VmId {
        let (guest, pending_mgr, slot) = match &vm_cfg.policy {
            GuestPolicy::Edf => (GuestSched::Edf(EdfScheduler::new()), None, 0),
            GuestPolicy::FixedPriority => {
                (GuestSched::FixedPriority(FixedPriority::new()), None, 0)
            }
            GuestPolicy::SelfTuning(mgr_cfg) => {
                let (hook, reader) = Tracer::create(TracerConfig::default());
                let slot = self.hooks.borrow().len() as u16;
                self.hooks.borrow_mut().push(hook);
                (
                    GuestSched::Reservation(ReservationScheduler::new()),
                    Some((mgr_cfg.clone(), reader)),
                    slot,
                )
            }
        };
        let floor = self.cfg.supervisor.budget_floor(vm_cfg.period);
        let vm = self.kernel.sched_mut().create_vm(
            ServerConfig::new(floor, vm_cfg.period).with_mode(self.cfg.cbs_mode),
            guest,
        );
        let sid = self.kernel.sched_mut().vm_server_id(vm);
        self.cfg.supervisor.apply(
            self.kernel.sched_mut().host_mut(),
            &[BwRequest {
                server: sid,
                budget: vm_cfg.budget,
                period: vm_cfg.period,
            }],
        );
        // The tenant's inner bound never exceeds what the host actually
        // *granted* — on the curbed path that can be well below the
        // requested share, and a guest supervisor bounded by the request
        // would hand out uncompressed grants (and report no compression
        // pressure) against supply that does not exist.
        let granted = self.vm_share(vm);
        let mgr = pending_mgr.map(|(mut mgr_cfg, reader)| {
            mgr_cfg.supervisor.ulub = mgr_cfg.supervisor.ulub.min(granted).max(1e-6);
            SelfTuningManager::new(mgr_cfg, reader)
        });
        self.vms.push(VmRuntime {
            label: vm_cfg.label,
            mgr,
            slot,
            tasks: Vec::new(),
            killed: false,
            elastic: None,
        });
        vm
    }

    /// Puts the VM's host share under a [`VmShareController`]: every
    /// control period the share is re-requested from the tenant's
    /// *measured* demand (guest bookings, share consumption, compression
    /// events) through the host supervisor. The controller's cap is
    /// clamped to the host bound, so an elastic VM can never oversubscribe
    /// the node; grants are propagated down into the guest manager's own
    /// bound, so tenant-internal compression always reflects the live
    /// supply.
    pub fn make_vm_elastic(&mut self, vm: VmId, mut cfg: VmElasticConfig) {
        cfg.controller.max_share = cfg.controller.max_share.min(self.cfg.supervisor.ulub);
        cfg.controller.min_share = cfg.controller.min_share.min(cfg.controller.max_share);
        let now = self.kernel.now();
        let consumed = self.vm_consumed(vm);
        let rt = &mut self.vms[vm.index()];
        let last_compressions = rt
            .mgr
            .as_ref()
            .map_or(0, SelfTuningManager::compressed_grants);
        rt.elastic = Some(ElasticRt {
            ctl: VmShareController::new(cfg, now),
            last_consumed: consumed,
            last_compressions,
            last_at: now,
            share_key: None,
        });
    }

    /// The VM's elastic-share controller, if
    /// [`VirtPlatform::make_vm_elastic`] attached one.
    pub fn vm_share_controller(&self, vm: VmId) -> Option<&VmShareController> {
        self.vms[vm.index()].elastic.as_ref().map(|e| &e.ctl)
    }

    /// The most common detected period among the VM's managed guest
    /// tasks (ties to the shorter period), if any guest task has one —
    /// the observation the share-period adapter tracks.
    fn vm_dominant_period(&self, vm: VmId) -> Option<Dur> {
        let mgr = self.vms[vm.index()].mgr.as_ref()?;
        let mut counts: Vec<(Dur, u32)> = Vec::new();
        for &tid in &self.vms[vm.index()].tasks {
            let Some(p) = mgr.controller_of(tid).and_then(|c| c.period()) else {
                continue;
            };
            match counts.iter_mut().find(|(q, _)| *q == p) {
                Some((_, n)) => *n += 1,
                None => counts.push((p, 1)),
            }
        }
        counts
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            .map(|(p, _)| p)
    }

    /// The bandwidth bound currently imposed on the VM's guest manager
    /// (its inner supervisor's `U_lub`), if the guest is self-tuning.
    /// Elastic re-grants move this bound; it must never collapse below
    /// the share of the supervisor's budget floor.
    pub fn vm_guest_bound(&self, vm: VmId) -> Option<f64> {
        self.vms[vm.index()]
            .mgr
            .as_ref()
            .map(|m| m.config().supervisor.ulub)
    }

    /// One elastic control step of a VM whose controller is due: gathers
    /// the observation, folds it, executes any re-request through the host
    /// supervisor and re-bounds the guest manager at the new grant.
    fn step_vm_share(&mut self, vm: VmId) {
        let now = self.kernel.now();
        let Some(mut el) = self.vms[vm.index()].elastic.take() else {
            return;
        };
        if el.ctl.due(now) {
            let granted = self.vm_share(vm);
            let booked = match (&self.vms[vm.index()].mgr, self.kernel.sched().guest(vm)) {
                (Some(mgr), GuestSched::Reservation(g)) => mgr.booked_bandwidth(g),
                _ => 0.0,
            };
            let consumed = self.vm_consumed(vm);
            let compressions = self.vms[vm.index()]
                .mgr
                .as_ref()
                .map_or(0, SelfTuningManager::compressed_grants);
            let dominant_period = if el.ctl.config().adapt_period {
                self.vm_dominant_period(vm)
            } else {
                None
            };
            let obs = VmObservation {
                granted,
                booked,
                consumed_delta: consumed.saturating_sub(el.last_consumed),
                elapsed: now.saturating_since(el.last_at),
                compressions_delta: compressions - el.last_compressions,
                dominant_period,
            };
            el.last_consumed = consumed;
            el.last_compressions = compressions;
            el.last_at = now;
            let (decision, trace) = el.ctl.step_traced(&obs, now);
            if let ShareDecision::Request(target) = decision {
                // T^s = P one level up: a re-request carries the adapted
                // share period (tracking the dominant guest period) when
                // adaptation is on, the server's current period otherwise.
                let period = el
                    .ctl
                    .share_period()
                    .unwrap_or_else(|| self.vm_server(vm).config().period);
                let floor = self.cfg.supervisor.budget_floor(period);
                let budget = period.mul_f64(target).max(floor).min(period);
                let (granted, compressed, available) =
                    self.request_vm_share_detailed(vm, budget, period);
                // Even a fully compressed grant leaves the guest manager a
                // real bound: the supervisor never shrinks a server below
                // its budget floor, so that floor's share — not an
                // arbitrary epsilon — is the honest lower limit. (A zero
                // bound would poison the guest supervisor outright.)
                let bound_floor = floor.ratio(period).min(1.0);
                if let Some(mgr) = self.vms[vm.index()].mgr.as_mut() {
                    mgr.set_bandwidth_bound(granted.clamp(bound_floor, 1.0));
                }
                self.share_events.push(ShareGrantEvent {
                    at: now,
                    vm,
                    demand: trace.demand,
                    target,
                    granted,
                    compressed,
                    clamp: trace.clamp,
                    pending: trace.pending,
                    available,
                });
            }
            let share = self.vm_share(vm);
            let key = match el.share_key {
                Some(k) => k,
                None => {
                    let label = &self.vms[vm.index()].label;
                    let k = self.kernel.metrics_mut().key(&format!("{label}.share"));
                    el.share_key = Some(k);
                    k
                }
            };
            self.kernel.metrics_mut().record_k(key, now, share);
        }
        self.vms[vm.index()].elastic = Some(el);
    }

    /// Re-requests a VM's share mid-run through the host supervisor (the
    /// grant may be compressed under saturation). Returns the granted
    /// share `Q/T`.
    pub fn request_vm_share(&mut self, vm: VmId, budget: Dur, period: Dur) -> f64 {
        self.request_vm_share_detailed(vm, budget, period).0
    }

    /// [`VirtPlatform::request_vm_share`] plus the supervisor arithmetic a
    /// decision journal records: `(granted, compressed, available)`.
    pub fn request_vm_share_detailed(
        &mut self,
        vm: VmId,
        budget: Dur,
        period: Dur,
    ) -> (f64, bool, f64) {
        let sid = self.kernel.sched_mut().vm_server_id(vm);
        let (grants, report) = self.cfg.supervisor.apply_detailed(
            self.kernel.sched_mut().host_mut(),
            &[BwRequest {
                server: sid,
                budget,
                period,
            }],
        );
        let g = grants.first();
        (
            g.map(|g| g.bandwidth()).unwrap_or(0.0),
            g.map(|g| g.compressed).unwrap_or(false),
            report.available,
        )
    }

    /// Drains the executed elastic re-grants buffered since the previous
    /// drain, in simulation order. A fleet runner converts these into
    /// journal records; callers that never drain pay one growing `Vec`.
    pub fn drain_share_grants(&mut self) -> Vec<ShareGrantEvent> {
        std::mem::take(&mut self.share_events)
    }

    /// Spawns a workload inside a VM, ready at `start`.
    pub fn spawn_in_vm_at(
        &mut self,
        vm: VmId,
        name: &str,
        workload: Box<dyn Workload>,
        start: Time,
    ) -> TaskId {
        let tid = self.kernel.spawn_at(name, workload, start);
        self.kernel.sched_mut().assign(tid, vm);
        let mut route = self.route.borrow_mut();
        if route.len() <= tid.index() {
            route.resize(tid.index() + 1, 0);
        }
        route[tid.index()] = self.vms[vm.index()].slot;
        drop(route);
        self.vms[vm.index()].tasks.push(tid);
        tid
    }

    /// Spawns a workload inside a VM, ready immediately.
    pub fn spawn_in_vm(&mut self, vm: VmId, name: &str, workload: Box<dyn Workload>) -> TaskId {
        self.spawn_in_vm_at(vm, name, workload, self.kernel.now())
    }

    /// Spawns a host-level (non-VM) workload.
    pub fn spawn_host(&mut self, name: &str, workload: Box<dyn Workload>) -> TaskId {
        self.kernel.spawn(name, workload)
    }

    /// Puts a guest task under its VM's self-tuning manager.
    ///
    /// # Panics
    ///
    /// Panics if the VM is not a [`GuestPolicy::SelfTuning`] guest.
    pub fn manage_in_vm(&mut self, vm: VmId, task: TaskId, label: &str, cfg: ControllerConfig) {
        self.vms[vm.index()]
            .mgr
            .as_mut()
            .unwrap_or_else(|| panic!("{vm} is not self-tuning"))
            .manage(task, label, cfg);
    }

    /// Warm-starts a guest task under its VM's manager with carried
    /// controller state (see [`SelfTuningManager::manage_warm_in`]).
    ///
    /// # Panics
    ///
    /// Panics if the VM is not a [`GuestPolicy::SelfTuning`] guest.
    pub fn manage_warm_in_vm(
        &mut self,
        vm: VmId,
        task: TaskId,
        label: &str,
        cfg: ControllerConfig,
        budget: Dur,
        period: Dur,
    ) {
        let kernel = &mut self.kernel;
        self.vms[vm.index()]
            .mgr
            .as_mut()
            .unwrap_or_else(|| panic!("{vm} is not self-tuning"))
            .manage_warm_in(
                kernel,
                |s| s.guest_reservations_mut(vm),
                task,
                label,
                cfg,
                budget,
                period,
            );
    }

    /// Puts a host-level task under the host self-tuning manager.
    pub fn manage_host(&mut self, task: TaskId, label: &str, cfg: ControllerConfig) {
        self.host_mgr.manage(task, label, cfg);
    }

    /// Warm-starts a host-level task (see
    /// [`SelfTuningManager::manage_warm_in`]).
    pub fn manage_host_warm(
        &mut self,
        task: TaskId,
        label: &str,
        cfg: ControllerConfig,
        budget: Dur,
        period: Dur,
    ) {
        self.host_mgr.manage_warm_in(
            &mut self.kernel,
            VirtScheduler::host_mut,
            task,
            label,
            cfg,
            budget,
            period,
        );
    }

    /// Stops managing a host-level task (reservation released).
    pub fn unmanage_host(&mut self, task: TaskId) -> bool {
        self.host_mgr
            .unmanage_in(&mut self.kernel, VirtScheduler::host_mut, task)
    }

    /// Stops managing a guest task inside its VM.
    pub fn unmanage_in_vm(&mut self, vm: VmId, task: TaskId) -> bool {
        match self.vms[vm.index()].mgr.as_mut() {
            Some(mgr) => mgr.unmanage_in(&mut self.kernel, |s| s.guest_reservations_mut(vm), task),
            None => false,
        }
    }

    /// Registers a relative deadline with a VM's EDF guest.
    ///
    /// # Panics
    ///
    /// Panics if the VM's guest is not [`GuestPolicy::Edf`].
    pub fn set_guest_deadline(&mut self, vm: VmId, task: TaskId, rel: Dur) {
        match self.kernel.sched_mut().guest_mut(vm) {
            GuestSched::Edf(e) => e.set_relative_deadline(task, rel),
            _ => panic!("{vm} is not an EDF guest"),
        }
    }

    /// Registers a fixed priority with a VM's fixed-priority guest.
    ///
    /// # Panics
    ///
    /// Panics if the VM's guest is not [`GuestPolicy::FixedPriority`].
    pub fn set_guest_priority(&mut self, vm: VmId, task: TaskId, prio: u32) {
        match self.kernel.sched_mut().guest_mut(vm) {
            GuestSched::FixedPriority(f) => f.set_priority(task, prio),
            _ => panic!("{vm} is not a fixed-priority guest"),
        }
    }

    /// Kills a VM: every guest task is unmanaged and terminated, and the
    /// VM's share shrinks to the admission floor — its bandwidth returns
    /// to the host pool. Returns `false` if the VM was already killed.
    pub fn kill_vm(&mut self, vm: VmId) -> bool {
        let rt = &mut self.vms[vm.index()];
        if rt.killed {
            return false;
        }
        rt.killed = true;
        let tasks = core::mem::take(&mut rt.tasks);
        for &t in &tasks {
            if let Some(mgr) = rt.mgr.as_mut() {
                mgr.unmanage_in(&mut self.kernel, |s| s.guest_reservations_mut(vm), t);
            }
            self.kernel.kill(t);
        }
        rt.tasks = tasks;
        rt.elastic = None;
        self.kernel.sched_mut().release_vm(vm);
        true
    }

    /// One sampling step of every manager (host first, then VMs in id
    /// order, then due elastic share controllers in id order — a
    /// deterministic schedule where share decisions always see the guest
    /// managers' freshest bookings).
    pub fn step_managers(&mut self) {
        self.host_mgr
            .step_in(&mut self.kernel, VirtScheduler::host_mut);
        for (i, rt) in self.vms.iter_mut().enumerate() {
            if rt.killed {
                continue;
            }
            if let Some(mgr) = rt.mgr.as_mut() {
                let vm = VmId(i as u32);
                mgr.step_in(&mut self.kernel, |s| s.guest_reservations_mut(vm));
            }
        }
        for i in 0..self.vms.len() {
            if self.vms[i].killed {
                continue;
            }
            self.step_vm_share(VmId(i as u32));
        }
    }

    /// Drives the kernel to `until`, stepping every manager at the host
    /// sampling period.
    pub fn run(&mut self, until: Time) {
        while self.kernel.now() < until {
            let next = (self.kernel.now() + self.cfg.sampling).min(until);
            self.kernel.run_until(next);
            self.step_managers();
        }
    }

    /// The underlying kernel.
    pub fn kernel(&self) -> &Kernel<VirtScheduler> {
        &self.kernel
    }

    /// Mutable access to the underlying kernel.
    pub fn kernel_mut(&mut self) -> &mut Kernel<VirtScheduler> {
        &mut self.kernel
    }

    /// The host-level manager (flat legacy tasks).
    pub fn host_manager(&self) -> &SelfTuningManager {
        &self.host_mgr
    }

    /// The per-guest manager of a VM, if it is self-tuning.
    pub fn guest_manager(&self, vm: VmId) -> Option<&SelfTuningManager> {
        self.vms[vm.index()].mgr.as_ref()
    }

    /// Number of VMs created.
    pub fn vm_count(&self) -> usize {
        self.vms.len()
    }

    /// The VM's label.
    pub fn vm_label(&self, vm: VmId) -> &str {
        &self.vms[vm.index()].label
    }

    /// Guest tasks spawned into the VM, in spawn order.
    pub fn vm_tasks(&self, vm: VmId) -> &[TaskId] {
        &self.vms[vm.index()].tasks
    }

    /// Whether the VM has been killed.
    pub fn vm_is_killed(&self, vm: VmId) -> bool {
        self.vms[vm.index()].killed
    }

    /// The host server backing the VM's share.
    pub fn vm_server(&self, vm: VmId) -> &Server {
        self.kernel.sched().vm_server(vm)
    }

    /// The VM's currently granted share `Q/T`.
    pub fn vm_share(&self, vm: VmId) -> f64 {
        self.vm_server(vm).config().bandwidth()
    }

    /// Cumulative CPU consumed by the VM (all guest tasks).
    pub fn vm_consumed(&self, vm: VmId) -> Dur {
        self.vm_server(vm).stats().consumed
    }

    /// Total host bandwidth currently reserved (VM shares + flat
    /// reservations).
    pub fn host_reserved_bandwidth(&self) -> f64 {
        self.kernel.sched().host().total_reserved_bandwidth()
    }

    /// The host supervisor in force.
    pub fn supervisor(&self) -> &Supervisor {
        &self.cfg.supervisor
    }

    /// Re-bounds the host supervisor's utilisation cap `U_lub` in place —
    /// the node-level control knob one level above the elastic VM loop.
    ///
    /// The new bound governs every later admission and apply pass: both
    /// the flat-task manager and VM share requests route through the one
    /// host supervisor, whose cap moves here. When the bound drops below
    /// what is currently granted, every live VM share is recompressed
    /// immediately through one supervisor apply pass (in VM-id order,
    /// proportionally), and each self-tuning guest's own bound follows
    /// its new grant — the same downward propagation an elastic re-grant
    /// performs. Flat-task grants recompress on their manager's next
    /// apply pass under the new cap.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < ulub <= 1`.
    pub fn set_host_ulub(&mut self, ulub: f64) {
        assert!(ulub > 0.0 && ulub <= 1.0, "ulub {ulub} out of (0, 1]");
        self.cfg.supervisor.ulub = ulub;
        self.host_mgr.set_bandwidth_bound(ulub);
        if self.host_reserved_bandwidth() <= ulub + 1e-9 {
            return;
        }
        let reqs: Vec<BwRequest> = (0..self.vms.len())
            .filter(|&i| !self.vms[i].killed)
            .map(|i| {
                let cfg = self.vm_server(VmId(i as u32)).config();
                BwRequest {
                    server: self.kernel.sched().vm_server_id(VmId(i as u32)),
                    budget: cfg.budget,
                    period: cfg.period,
                }
            })
            .collect();
        if reqs.is_empty() {
            return;
        }
        let grants = self
            .cfg
            .supervisor
            .apply(self.kernel.sched_mut().host_mut(), &reqs);
        let live: Vec<usize> = (0..self.vms.len())
            .filter(|&i| !self.vms[i].killed)
            .collect();
        for (&i, grant) in live.iter().zip(&grants) {
            let bound_floor = self
                .cfg
                .supervisor
                .budget_floor(grant.period)
                .ratio(grant.period)
                .min(1.0);
            if let Some(mgr) = self.vms[i].mgr.as_mut() {
                mgr.set_bandwidth_bound(grant.bandwidth().clamp(bound_floor, 1.0));
            }
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.kernel.now()
    }
}
