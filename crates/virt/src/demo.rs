//! The canonical VM-consolidation scenario, shared by the
//! `vm_consolidation` experiment, the example and the e2e test so they
//! cannot drift apart.
//!
//! Two tenants consolidate onto one host at a fixed total bandwidth
//! ([`TOTAL_BANDWIDTH`]):
//!
//! * the **victim** — a well-behaved 25 Hz application (20 ms jobs every
//!   40 ms, utilisation 0.5) in a VM granted a 0.6 share;
//! * the **noisy neighbour** — two greedy tasks (38 ms jobs every 40 ms,
//!   1.9 total demand) in a VM granted a 0.3 share.
//!
//! Three configurations answer the isolation question:
//!
//! * **solo** — the victim's VM alone (its baseline miss rate);
//! * **hierarchical** — both VMs under two-level CBS with per-guest
//!   self-tuning: the neighbour's overload compresses *its own* tenant's
//!   reservations only, so the victim holds its share;
//! * **flat** — the same task set under one flat self-tuning manager at
//!   the same total bound: the supervisor's proportional compression
//!   spreads the neighbour's greed across *every* task, and the victim —
//!   which needs most of its demand to make its deadlines — melts.
//!
//! The module also hosts the canonical **elasticity** scenarios backing
//! the `vm_elasticity` experiment/example/e2e: [`run_two_phase`] (an
//! idle-phase tenant's share reclaimed for a hungry sibling under
//! [`crate::VmShareController`]s) and [`run_runaway`] (a runaway elastic
//! tenant pinned at the host cap next to an untouched static sibling).

use selftune_apps::PeriodicRt;
use selftune_core::{ControllerConfig, ManagerConfig, SelfTuningManager};
use selftune_sched::{ReservationScheduler, Supervisor};
use selftune_simcore::metrics::Metrics;
use selftune_simcore::rng::Rng;
use selftune_simcore::task::{Action, TaskCtx, Workload};
use selftune_simcore::time::{Dur, Time};
use selftune_simcore::Kernel;
use selftune_tracer::{Tracer, TracerConfig};

use crate::elastic::VmElasticConfig;
use crate::platform::{VirtPlatform, VmConfig};

/// Total reservable bandwidth in every configuration: the two VM shares
/// (0.6 + 0.3) in the hierarchical runs, the supervisor bound in the flat
/// run.
pub const TOTAL_BANDWIDTH: f64 = 0.9;

/// A completion gap above `MISS_FACTOR × P` counts as a deadline miss.
///
/// Tighter than the fleet layer's 1.5 because the claim under test is
/// *isolation*: the victim's jobs either hold their 40 ms cadence (gap
/// ratio ≈ 1.0) or run against a compressed grant (ratio ≥ ~1.3); 1.25
/// separates the two regimes with margin for cost noise.
pub const MISS_FACTOR: f64 = 1.25;

/// The victim's job parameters: 20 ms every 40 ms.
pub const VICTIM_WCET_MS: u64 = 20;
/// The victim's period.
pub const VICTIM_PERIOD_MS: u64 = 40;
/// Each noisy task's job cost: 38 ms every 40 ms (demand 0.95 apiece).
pub const NOISY_WCET_MS: u64 = 38;
/// The noisy tasks' period.
pub const NOISY_PERIOD_MS: u64 = 40;
/// Number of noisy tasks in the neighbour VM.
pub const NOISY_TASKS: usize = 2;

/// Completion/miss counters of one tenant.
#[derive(Clone, Copy, Debug, Default)]
pub struct GuestStats {
    /// Completed jobs.
    pub completions: u64,
    /// Completion gaps observed.
    pub gaps: u64,
    /// Gaps exceeding [`MISS_FACTOR`] times the nominal period.
    pub misses: u64,
}

impl GuestStats {
    /// Deadline-miss rate over the observed gaps (0 when none).
    pub fn miss_rate(&self) -> f64 {
        if self.gaps == 0 {
            0.0
        } else {
            self.misses as f64 / self.gaps as f64
        }
    }

    fn add_label(&mut self, metrics: &Metrics, label: &str, period_ms: f64) {
        let mark = format!("{label}.job");
        self.completions += metrics.marks(&mark).len() as u64;
        for gap in metrics.inter_mark_iter(&mark) {
            self.gaps += 1;
            if gap / period_ms > MISS_FACTOR {
                self.misses += 1;
            }
        }
    }
}

/// Per-tenant outcome of one consolidation run.
#[derive(Clone, Copy, Debug, Default)]
pub struct ConsolidationReport {
    /// The well-behaved tenant.
    pub victim: GuestStats,
    /// The noisy tenant.
    pub noisy: GuestStats,
}

impl ConsolidationReport {
    /// Total completions across both tenants.
    pub fn completions(&self) -> u64 {
        self.victim.completions + self.noisy.completions
    }
}

fn victim_workload(seed: u64) -> PeriodicRt {
    PeriodicRt::new(
        "victim",
        Dur::ms(VICTIM_WCET_MS),
        Dur::ms(VICTIM_PERIOD_MS),
        0.1,
        Rng::new(seed),
    )
}

fn noisy_workload(label: &str, seed: u64) -> PeriodicRt {
    PeriodicRt::new(
        label,
        Dur::ms(NOISY_WCET_MS),
        Dur::ms(NOISY_PERIOD_MS),
        0.1,
        Rng::new(seed),
    )
}

fn host_manager_config() -> ManagerConfig {
    ManagerConfig {
        supervisor: Supervisor::new(0.95),
        ..ManagerConfig::default()
    }
}

/// The victim tenant's VM: a 0.6 share supplied at 10 ms granularity.
pub fn victim_vm() -> VmConfig {
    VmConfig::self_tuning("victim-vm", Dur::ms(6), Dur::ms(10))
}

/// The noisy tenant's VM: a 0.3 share supplied at 10 ms granularity.
pub fn noisy_vm() -> VmConfig {
    VmConfig::self_tuning("noisy-vm", Dur::ms(3), Dur::ms(10))
}

fn victim_stats(metrics: &Metrics) -> GuestStats {
    let mut s = GuestStats::default();
    s.add_label(metrics, "victim", VICTIM_PERIOD_MS as f64);
    s
}

fn noisy_stats(metrics: &Metrics) -> GuestStats {
    let mut s = GuestStats::default();
    for i in 0..NOISY_TASKS {
        s.add_label(metrics, &format!("noisy{i}"), NOISY_PERIOD_MS as f64);
    }
    s
}

/// The victim's VM running alone — its solo-run baseline.
pub fn run_solo(horizon: Dur, seed: u64) -> GuestStats {
    let mut p = VirtPlatform::new(host_manager_config());
    let vm = p.create_vm(victim_vm()).expect("solo share fits");
    let tid = p.spawn_in_vm(vm, "victim", Box::new(victim_workload(seed)));
    p.manage_in_vm(vm, tid, "victim", ControllerConfig::default());
    p.run(Time::ZERO + horizon);
    victim_stats(p.kernel().metrics())
}

/// Both tenants under two-level CBS with per-guest self-tuning.
pub fn run_hierarchical(horizon: Dur, seed: u64) -> ConsolidationReport {
    let mut p = VirtPlatform::new(host_manager_config());
    let victim = p.create_vm(victim_vm()).expect("victim share fits");
    let noisy = p.create_vm(noisy_vm()).expect("noisy share fits");
    let tid = p.spawn_in_vm(victim, "victim", Box::new(victim_workload(seed)));
    p.manage_in_vm(victim, tid, "victim", ControllerConfig::default());
    for i in 0..NOISY_TASKS {
        let label = format!("noisy{i}");
        let tid = p.spawn_in_vm(
            noisy,
            &label,
            Box::new(noisy_workload(&label, seed ^ (0xB0 + i as u64))),
        );
        p.manage_in_vm(noisy, tid, &label, ControllerConfig::default());
    }
    p.run(Time::ZERO + horizon);
    ConsolidationReport {
        victim: victim_stats(p.kernel().metrics()),
        noisy: noisy_stats(p.kernel().metrics()),
    }
}

// ---------------------------------------------------------------------
// The elasticity scenario (`vm_elasticity` experiment / e2e / example).
// ---------------------------------------------------------------------

/// The phased tenant's job cost: 12 ms every 40 ms (demand 0.3) while
/// busy.
pub const PHASED_WCET_MS: u64 = 12;
/// The phased tenant's period.
pub const PHASED_PERIOD_MS: u64 = 40;
/// Each hungry task's job cost (two of them: demand 0.6 total, inside a
/// 0.45 share — compressed until the sibling's bandwidth is reclaimed).
pub const HUNGRY_WCET_MS: u64 = 12;
/// The hungry tasks' period.
pub const HUNGRY_PERIOD_MS: u64 = 40;
/// Number of hungry guest tasks.
pub const HUNGRY_TASKS: usize = 2;
/// Fraction of the horizon after which the phased tenant goes idle.
pub const IDLE_FROM_FRAC: f64 = 0.4;
/// Both elasticity-demo VMs start at a 0.45 share (4.5 ms / 10 ms).
pub const ELASTIC_SHARE_BUDGET_US: u64 = 4_500;
/// Share period of the elasticity-demo VMs.
pub const ELASTIC_SHARE_PERIOD_MS: u64 = 10;

/// Delegates to the inner workload until `idle_from`, then parks in long
/// sleeps — a tenant whose demand collapses mid-run without exiting (the
/// VM stays admitted; only its *measured* demand goes to zero).
pub struct IdlePhase {
    inner: Box<dyn Workload>,
    idle_from: Time,
}

impl IdlePhase {
    /// Wraps `inner` so it idles (but stays alive) from `idle_from` on.
    pub fn new(inner: Box<dyn Workload>, idle_from: Time) -> IdlePhase {
        IdlePhase { inner, idle_from }
    }
}

impl Workload for IdlePhase {
    fn next(&mut self, ctx: &mut TaskCtx<'_>) -> Action {
        if ctx.now >= self.idle_from {
            return Action::SleepFor(Dur::secs(1));
        }
        self.inner.next(ctx)
    }
}

/// Outcome of one two-tenant elasticity run.
#[derive(Clone, Copy, Debug, Default)]
pub struct ElasticityReport {
    /// The tenant whose demand collapses mid-run.
    pub phased: GuestStats,
    /// The tenant that wants more than its static share.
    pub hungry: GuestStats,
    /// The phased VM's granted share at the horizon.
    pub phased_share: f64,
    /// The hungry VM's granted share at the horizon.
    pub hungry_share: f64,
}

/// Two tenants at equal 0.45 shares (0.9 total): a *phased* VM whose
/// single guest goes idle at [`IDLE_FROM_FRAC`] of the horizon, and a
/// *hungry* VM whose two guests want 0.6. With `elastic` off the shares
/// are frozen at admission (the hungry tenant stays compressed forever,
/// the idle tenant hoards 0.45 of dark bandwidth); with `elastic` on each
/// VM runs a [`crate::VmShareController`] and the idle share is reclaimed
/// and re-granted to the hungry sibling.
pub fn run_two_phase(horizon: Dur, seed: u64, elastic: bool) -> ElasticityReport {
    let mut p = VirtPlatform::new(host_manager_config());
    let share = |label: &str| {
        VmConfig::self_tuning(
            label,
            Dur::us(ELASTIC_SHARE_BUDGET_US),
            Dur::ms(ELASTIC_SHARE_PERIOD_MS),
        )
    };
    let phased_vm = p.create_vm(share("phased-vm")).expect("0.45 fits");
    let hungry_vm = p.create_vm(share("hungry-vm")).expect("0.9 total fits");

    let idle_from = Time::ZERO + horizon.mul_f64(IDLE_FROM_FRAC);
    let inner = PeriodicRt::new(
        "phased",
        Dur::ms(PHASED_WCET_MS),
        Dur::ms(PHASED_PERIOD_MS),
        0.1,
        Rng::new(seed),
    );
    let tid = p.spawn_in_vm(
        phased_vm,
        "phased",
        Box::new(IdlePhase::new(Box::new(inner), idle_from)),
    );
    p.manage_in_vm(phased_vm, tid, "phased", ControllerConfig::default());
    for i in 0..HUNGRY_TASKS {
        let label = format!("hungry{i}");
        let w = PeriodicRt::new(
            &label,
            Dur::ms(HUNGRY_WCET_MS),
            Dur::ms(HUNGRY_PERIOD_MS),
            0.1,
            Rng::new(seed ^ (0xE1 + i as u64)),
        );
        let tid = p.spawn_in_vm(hungry_vm, &label, Box::new(w));
        p.manage_in_vm(hungry_vm, tid, &label, ControllerConfig::default());
    }
    if elastic {
        p.make_vm_elastic(phased_vm, VmElasticConfig::default());
        p.make_vm_elastic(hungry_vm, VmElasticConfig::default());
    }
    p.run(Time::ZERO + horizon);

    let mut phased = GuestStats::default();
    phased.add_label(p.kernel().metrics(), "phased", PHASED_PERIOD_MS as f64);
    let mut hungry = GuestStats::default();
    for i in 0..HUNGRY_TASKS {
        hungry.add_label(
            p.kernel().metrics(),
            &format!("hungry{i}"),
            HUNGRY_PERIOD_MS as f64,
        );
    }
    ElasticityReport {
        phased,
        hungry,
        phased_share: p.vm_share(phased_vm),
        hungry_share: p.vm_share(hungry_vm),
    }
}

/// Outcome of the runaway-tenant elasticity run.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunawayReport {
    /// The well-behaved sibling (static share).
    pub victim: GuestStats,
    /// The elastic tenant whose guests want ~1.9 CPUs.
    pub runaway: GuestStats,
    /// The largest share ever granted to the runaway VM.
    pub runaway_peak_share: f64,
    /// The victim VM's share at the horizon (must be untouched).
    pub victim_share: f64,
}

/// The consolidation scenario with the noisy tenant made *elastic*: its
/// controller probes upward forever (its guests want 1.9 CPUs), but the
/// host supervisor caps every grant at the bound minus the victim's fixed
/// share — a runaway elastic VM is pinned at the host cap and its sibling
/// never feels it.
pub fn run_runaway(horizon: Dur, seed: u64) -> RunawayReport {
    let mut p = VirtPlatform::new(host_manager_config());
    let victim = p.create_vm(victim_vm()).expect("victim share fits");
    let noisy = p.create_vm(noisy_vm()).expect("noisy share fits");
    let tid = p.spawn_in_vm(victim, "victim", Box::new(victim_workload(seed)));
    p.manage_in_vm(victim, tid, "victim", ControllerConfig::default());
    for i in 0..NOISY_TASKS {
        let label = format!("noisy{i}");
        let tid = p.spawn_in_vm(
            noisy,
            &label,
            Box::new(noisy_workload(&label, seed ^ (0xB0 + i as u64))),
        );
        p.manage_in_vm(noisy, tid, &label, ControllerConfig::default());
    }
    p.make_vm_elastic(noisy, VmElasticConfig::default());
    p.run(Time::ZERO + horizon);
    let peak = p
        .kernel()
        .metrics()
        .series("noisy-vm.share")
        .iter()
        .map(|&(_, s)| s)
        .fold(p.vm_share(noisy), f64::max);
    RunawayReport {
        victim: victim_stats(p.kernel().metrics()),
        runaway: noisy_stats(p.kernel().metrics()),
        runaway_peak_share: peak,
        victim_share: p.vm_share(victim),
    }
}

/// The same task set (victim + noisy tasks) under one flat self-tuning
/// manager at the same total bandwidth — no tenant boundary, so
/// compression is fleet-wide.
pub fn run_flat(horizon: Dur, seed: u64) -> ConsolidationReport {
    let mut k = Kernel::new(ReservationScheduler::new());
    let (hook, reader) = Tracer::create(TracerConfig::default());
    k.install_hook(Box::new(hook));
    let mut mgr = SelfTuningManager::new(
        ManagerConfig {
            supervisor: Supervisor::new(TOTAL_BANDWIDTH),
            ..ManagerConfig::default()
        },
        reader,
    );
    let tid = k.spawn("victim", Box::new(victim_workload(seed)));
    mgr.manage(tid, "victim", ControllerConfig::default());
    for i in 0..NOISY_TASKS {
        let label = format!("noisy{i}");
        let tid = k.spawn(
            &label,
            Box::new(noisy_workload(&label, seed ^ (0xB0 + i as u64))),
        );
        mgr.manage(tid, &label, ControllerConfig::default());
    }
    mgr.run(&mut k, Time::ZERO + horizon);
    ConsolidationReport {
        victim: victim_stats(k.metrics()),
        noisy: noisy_stats(k.metrics()),
    }
}
