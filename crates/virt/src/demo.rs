//! The canonical VM-consolidation scenario, shared by the
//! `vm_consolidation` experiment, the example and the e2e test so they
//! cannot drift apart.
//!
//! Two tenants consolidate onto one host at a fixed total bandwidth
//! ([`TOTAL_BANDWIDTH`]):
//!
//! * the **victim** — a well-behaved 25 Hz application (20 ms jobs every
//!   40 ms, utilisation 0.5) in a VM granted a 0.6 share;
//! * the **noisy neighbour** — two greedy tasks (38 ms jobs every 40 ms,
//!   1.9 total demand) in a VM granted a 0.3 share.
//!
//! Three configurations answer the isolation question:
//!
//! * **solo** — the victim's VM alone (its baseline miss rate);
//! * **hierarchical** — both VMs under two-level CBS with per-guest
//!   self-tuning: the neighbour's overload compresses *its own* tenant's
//!   reservations only, so the victim holds its share;
//! * **flat** — the same task set under one flat self-tuning manager at
//!   the same total bound: the supervisor's proportional compression
//!   spreads the neighbour's greed across *every* task, and the victim —
//!   which needs most of its demand to make its deadlines — melts.

use selftune_apps::PeriodicRt;
use selftune_core::{ControllerConfig, ManagerConfig, SelfTuningManager};
use selftune_sched::{ReservationScheduler, Supervisor};
use selftune_simcore::metrics::Metrics;
use selftune_simcore::rng::Rng;
use selftune_simcore::time::{Dur, Time};
use selftune_simcore::Kernel;
use selftune_tracer::{Tracer, TracerConfig};

use crate::platform::{VirtPlatform, VmConfig};

/// Total reservable bandwidth in every configuration: the two VM shares
/// (0.6 + 0.3) in the hierarchical runs, the supervisor bound in the flat
/// run.
pub const TOTAL_BANDWIDTH: f64 = 0.9;

/// A completion gap above `MISS_FACTOR × P` counts as a deadline miss.
///
/// Tighter than the fleet layer's 1.5 because the claim under test is
/// *isolation*: the victim's jobs either hold their 40 ms cadence (gap
/// ratio ≈ 1.0) or run against a compressed grant (ratio ≥ ~1.3); 1.25
/// separates the two regimes with margin for cost noise.
pub const MISS_FACTOR: f64 = 1.25;

/// The victim's job parameters: 20 ms every 40 ms.
pub const VICTIM_WCET_MS: u64 = 20;
/// The victim's period.
pub const VICTIM_PERIOD_MS: u64 = 40;
/// Each noisy task's job cost: 38 ms every 40 ms (demand 0.95 apiece).
pub const NOISY_WCET_MS: u64 = 38;
/// The noisy tasks' period.
pub const NOISY_PERIOD_MS: u64 = 40;
/// Number of noisy tasks in the neighbour VM.
pub const NOISY_TASKS: usize = 2;

/// Completion/miss counters of one tenant.
#[derive(Clone, Copy, Debug, Default)]
pub struct GuestStats {
    /// Completed jobs.
    pub completions: u64,
    /// Completion gaps observed.
    pub gaps: u64,
    /// Gaps exceeding [`MISS_FACTOR`] times the nominal period.
    pub misses: u64,
}

impl GuestStats {
    /// Deadline-miss rate over the observed gaps (0 when none).
    pub fn miss_rate(&self) -> f64 {
        if self.gaps == 0 {
            0.0
        } else {
            self.misses as f64 / self.gaps as f64
        }
    }

    fn add_label(&mut self, metrics: &Metrics, label: &str, period_ms: f64) {
        let mark = format!("{label}.job");
        self.completions += metrics.marks(&mark).len() as u64;
        for gap in metrics.inter_mark_iter(&mark) {
            self.gaps += 1;
            if gap / period_ms > MISS_FACTOR {
                self.misses += 1;
            }
        }
    }
}

/// Per-tenant outcome of one consolidation run.
#[derive(Clone, Copy, Debug, Default)]
pub struct ConsolidationReport {
    /// The well-behaved tenant.
    pub victim: GuestStats,
    /// The noisy tenant.
    pub noisy: GuestStats,
}

impl ConsolidationReport {
    /// Total completions across both tenants.
    pub fn completions(&self) -> u64 {
        self.victim.completions + self.noisy.completions
    }
}

fn victim_workload(seed: u64) -> PeriodicRt {
    PeriodicRt::new(
        "victim",
        Dur::ms(VICTIM_WCET_MS),
        Dur::ms(VICTIM_PERIOD_MS),
        0.1,
        Rng::new(seed),
    )
}

fn noisy_workload(label: &str, seed: u64) -> PeriodicRt {
    PeriodicRt::new(
        label,
        Dur::ms(NOISY_WCET_MS),
        Dur::ms(NOISY_PERIOD_MS),
        0.1,
        Rng::new(seed),
    )
}

fn host_manager_config() -> ManagerConfig {
    ManagerConfig {
        supervisor: Supervisor::new(0.95),
        ..ManagerConfig::default()
    }
}

/// The victim tenant's VM: a 0.6 share supplied at 10 ms granularity.
pub fn victim_vm() -> VmConfig {
    VmConfig::self_tuning("victim-vm", Dur::ms(6), Dur::ms(10))
}

/// The noisy tenant's VM: a 0.3 share supplied at 10 ms granularity.
pub fn noisy_vm() -> VmConfig {
    VmConfig::self_tuning("noisy-vm", Dur::ms(3), Dur::ms(10))
}

fn victim_stats(metrics: &Metrics) -> GuestStats {
    let mut s = GuestStats::default();
    s.add_label(metrics, "victim", VICTIM_PERIOD_MS as f64);
    s
}

fn noisy_stats(metrics: &Metrics) -> GuestStats {
    let mut s = GuestStats::default();
    for i in 0..NOISY_TASKS {
        s.add_label(metrics, &format!("noisy{i}"), NOISY_PERIOD_MS as f64);
    }
    s
}

/// The victim's VM running alone — its solo-run baseline.
pub fn run_solo(horizon: Dur, seed: u64) -> GuestStats {
    let mut p = VirtPlatform::new(host_manager_config());
    let vm = p.create_vm(victim_vm()).expect("solo share fits");
    let tid = p.spawn_in_vm(vm, "victim", Box::new(victim_workload(seed)));
    p.manage_in_vm(vm, tid, "victim", ControllerConfig::default());
    p.run(Time::ZERO + horizon);
    victim_stats(p.kernel().metrics())
}

/// Both tenants under two-level CBS with per-guest self-tuning.
pub fn run_hierarchical(horizon: Dur, seed: u64) -> ConsolidationReport {
    let mut p = VirtPlatform::new(host_manager_config());
    let victim = p.create_vm(victim_vm()).expect("victim share fits");
    let noisy = p.create_vm(noisy_vm()).expect("noisy share fits");
    let tid = p.spawn_in_vm(victim, "victim", Box::new(victim_workload(seed)));
    p.manage_in_vm(victim, tid, "victim", ControllerConfig::default());
    for i in 0..NOISY_TASKS {
        let label = format!("noisy{i}");
        let tid = p.spawn_in_vm(
            noisy,
            &label,
            Box::new(noisy_workload(&label, seed ^ (0xB0 + i as u64))),
        );
        p.manage_in_vm(noisy, tid, &label, ControllerConfig::default());
    }
    p.run(Time::ZERO + horizon);
    ConsolidationReport {
        victim: victim_stats(p.kernel().metrics()),
        noisy: noisy_stats(p.kernel().metrics()),
    }
}

/// The same task set (victim + noisy tasks) under one flat self-tuning
/// manager at the same total bandwidth — no tenant boundary, so
/// compression is fleet-wide.
pub fn run_flat(horizon: Dur, seed: u64) -> ConsolidationReport {
    let mut k = Kernel::new(ReservationScheduler::new());
    let (hook, reader) = Tracer::create(TracerConfig::default());
    k.install_hook(Box::new(hook));
    let mut mgr = SelfTuningManager::new(
        ManagerConfig {
            supervisor: Supervisor::new(TOTAL_BANDWIDTH),
            ..ManagerConfig::default()
        },
        reader,
    );
    let tid = k.spawn("victim", Box::new(victim_workload(seed)));
    mgr.manage(tid, "victim", ControllerConfig::default());
    for i in 0..NOISY_TASKS {
        let label = format!("noisy{i}");
        let tid = k.spawn(
            &label,
            Box::new(noisy_workload(&label, seed ^ (0xB0 + i as u64))),
        );
        mgr.manage(tid, &label, ControllerConfig::default());
    }
    mgr.run(&mut k, Time::ZERO + horizon);
    ConsolidationReport {
        victim: victim_stats(k.metrics()),
        noisy: noisy_stats(k.metrics()),
    }
}
