//! Platform-level tests: per-guest self-tuning inside VM shares, VM
//! lifecycle, and host supervisor arbitration under nesting.

use selftune_apps::PeriodicRt;
use selftune_core::{ControllerConfig, ManagerConfig};
use selftune_sched::Supervisor;
use selftune_simcore::kernel::TaskState;
use selftune_simcore::rng::Rng;
use selftune_simcore::time::{Dur, Time};
use selftune_virt::prelude::*;

fn platform(ulub: f64) -> VirtPlatform {
    VirtPlatform::new(ManagerConfig {
        supervisor: Supervisor::new(ulub),
        ..ManagerConfig::default()
    })
}

fn rt(label: &str, wcet_ms: u64, period_ms: u64, seed: u64) -> Box<PeriodicRt> {
    Box::new(PeriodicRt::new(
        label,
        Dur::ms(wcet_ms),
        Dur::ms(period_ms),
        0.1,
        Rng::new(seed),
    ))
}

#[test]
fn per_guest_manager_detects_and_attaches_inside_the_vm() {
    let mut p = platform(0.95);
    let vm = p
        .create_vm(VmConfig::self_tuning("tenant", Dur::ms(4), Dur::ms(10)))
        .expect("share fits");
    let tid = p.spawn_in_vm(vm, "app", rt("app", 4, 40, 5));
    p.manage_in_vm(vm, tid, "app", ControllerConfig::default());
    p.run(Time::ZERO + Dur::secs(8));

    // The guest manager detected the period and attached an *inner*
    // reservation, bounded by the VM's 0.4 share.
    let mgr = p.guest_manager(vm).expect("self-tuning guest");
    let ctl = mgr.controller_of(tid).expect("managed");
    let period = ctl.period().expect("period detected inside the VM");
    assert!((period.as_ms_f64() - 40.0).abs() < 2.0, "{period}");
    assert!(mgr.server_of(tid).is_some(), "inner reservation attached");
    // Jobs hold their cadence through the share.
    let gaps = p.kernel().metrics().inter_mark_times_ms("app.job");
    let late = gaps.iter().filter(|&&g| g > 60.0).count();
    assert!(gaps.len() > 150, "jobs completed: {}", gaps.len());
    assert!(late * 20 < gaps.len(), "{late} of {} late", gaps.len());
    // The host only sees the VM's share; the inner reservation does not
    // leak into host accounting.
    assert!(p.host_reserved_bandwidth() < 0.45);
}

#[test]
fn tenant_overload_compresses_inside_its_own_vm() {
    let mut p = platform(0.95);
    let quiet = p
        .create_vm(VmConfig::self_tuning("quiet", Dur::ms(3), Dur::ms(10)))
        .expect("fits");
    let greedy = p
        .create_vm(VmConfig::self_tuning("greedy", Dur::ms(5), Dur::ms(10)))
        .expect("fits");
    let q = p.spawn_in_vm(quiet, "q", rt("q", 2, 40, 1));
    p.manage_in_vm(quiet, q, "q", ControllerConfig::default());
    for i in 0..2 {
        let label = format!("g{i}");
        let t = p.spawn_in_vm(greedy, &label, rt(&label, 30, 40, 2 + i));
        p.manage_in_vm(greedy, t, &label, ControllerConfig::default());
    }
    p.run(Time::ZERO + Dur::secs(8));

    // The greedy tenant's manager had to compress grants (its tasks want
    // 1.5 CPUs inside a 0.5 share); the quiet tenant's manager did not.
    let greedy_mgr = p.guest_manager(greedy).expect("self-tuning");
    let quiet_mgr = p.guest_manager(quiet).expect("self-tuning");
    assert!(
        greedy_mgr.compressed_grants() > 0,
        "tenant overload must compress inside the tenant"
    );
    assert_eq!(
        quiet_mgr.compressed_grants(),
        0,
        "the quiet tenant must not be compressed by its neighbour"
    );
    // And the quiet tenant's jobs still complete on time.
    let gaps = p.kernel().metrics().inter_mark_times_ms("q.job");
    let late = gaps.iter().filter(|&&g| g > 60.0).count();
    assert!(late * 10 < gaps.len(), "{late} of {}", gaps.len());
}

#[test]
fn vm_admission_rejects_overcommitted_shares() {
    let mut p = platform(0.8);
    p.create_vm(VmConfig::self_tuning("a", Dur::ms(6), Dur::ms(10)))
        .expect("0.6 fits under 0.8");
    let err = p
        .create_vm(VmConfig::self_tuning("b", Dur::ms(3), Dur::ms(10)))
        .expect_err("0.6 + 0.3 > 0.8");
    match err {
        VmAdmissionError::Rejected {
            requested,
            available,
        } => {
            assert!((requested - 0.3).abs() < 1e-9);
            assert!(available < 0.3);
        }
    }
    // The rejected VM left nothing behind.
    assert_eq!(p.vm_count(), 1);
    assert!(p.host_reserved_bandwidth() < 0.7);
}

#[test]
fn curbed_admission_compresses_instead_of_rejecting() {
    let mut p = platform(0.8);
    p.create_vm(VmConfig::self_tuning("a", Dur::ms(6), Dur::ms(10)))
        .expect("0.6 fits under 0.8");
    // A 0.6 share on top of 0.6 does not fit; the curbed path lands it
    // anyway at what remains (~0.2) — the live-migration behaviour.
    let (vm, granted) = p.create_vm_curbed(VmConfig::self_tuning("b", Dur::ms(6), Dur::ms(10)));
    assert!(granted > 0.1 && granted < 0.3, "curbed to {granted}");
    assert!((p.vm_share(vm) - granted).abs() < 1e-9);
    assert!(p.host_reserved_bandwidth() <= 0.8 + 1e-9);
    // The curbed VM still runs guests.
    let t = p.spawn_in_vm(vm, "g", rt("g", 2, 40, 9));
    p.manage_in_vm(vm, t, "g", ControllerConfig::default());
    p.run(Time::ZERO + Dur::secs(3));
    assert!(!p.kernel().metrics().marks("g.job").is_empty());
}

#[test]
fn kill_vm_releases_the_full_reservation_and_stops_guests() {
    let mut p = platform(0.95);
    let a = p
        .create_vm(VmConfig::self_tuning("a", Dur::ms(4), Dur::ms(10)))
        .expect("fits");
    let b = p
        .create_vm(VmConfig::self_tuning("b", Dur::ms(3), Dur::ms(10)))
        .expect("fits");
    let ta = p.spawn_in_vm(a, "a0", rt("a0", 3, 40, 3));
    p.manage_in_vm(a, ta, "a0", ControllerConfig::default());
    let tb = p.spawn_in_vm(b, "b0", rt("b0", 3, 40, 4));
    p.manage_in_vm(b, tb, "b0", ControllerConfig::default());
    p.run(Time::ZERO + Dur::secs(3));
    assert!(p.host_reserved_bandwidth() > 0.65);

    assert!(p.kill_vm(a));
    assert!(!p.kill_vm(a), "double kill is a no-op");
    // The killed VM's whole share returned to the host pool (only b's 0.3
    // plus the floor residue remains).
    assert!(
        p.host_reserved_bandwidth() < 0.35,
        "residual {}",
        p.host_reserved_bandwidth()
    );
    assert_eq!(p.kernel().task_state(ta), TaskState::Exited);
    // The survivor keeps running.
    let before = p.kernel().metrics().marks("b0.job").len();
    p.run(Time::ZERO + Dur::secs(5));
    assert!(p.kernel().metrics().marks("b0.job").len() > before);
    // Freed bandwidth is reusable: a new VM with the released share fits.
    p.create_vm(VmConfig::self_tuning("c", Dur::ms(4), Dur::ms(10)))
        .expect("released share is reusable");
}

#[test]
fn edf_and_fixed_priority_guests_dispatch_by_their_policy() {
    let mut p = platform(0.95);
    let vm = p
        .create_vm(VmConfig {
            label: "edf".into(),
            budget: Dur::ms(9),
            period: Dur::ms(10),
            policy: GuestPolicy::Edf,
        })
        .expect("fits");
    let t1 = p.spawn_in_vm(vm, "slow", rt("slow", 4, 80, 1));
    let t2 = p.spawn_in_vm(vm, "fast", rt("fast", 2, 20, 2));
    p.set_guest_deadline(vm, t1, Dur::ms(80));
    p.set_guest_deadline(vm, t2, Dur::ms(20));
    p.run(Time::ZERO + Dur::secs(2));
    // Both make their rates under guest EDF inside the shared 0.9 share.
    assert!(p.kernel().metrics().marks("fast.job").len() > 90);
    assert!(p.kernel().metrics().marks("slow.job").len() > 20);
}

#[test]
fn compressed_elastic_grant_floors_the_guest_bound_at_budget_floor() {
    use selftune_core::share::ShareControllerConfig;
    use selftune_virt::VmElasticConfig;

    let mut p = platform(0.5);
    // A static tenant occupying most of the host.
    p.create_vm(VmConfig::self_tuning("bulk", Dur::ms(4), Dur::ms(10)))
        .expect("0.4 fits under 0.5");
    // A small elastic tenant whose guests want far more than remains: its
    // controller probes upward, and every re-granted share comes back
    // compressed by the host supervisor.
    let vm = p
        .create_vm(VmConfig::self_tuning("squeezed", Dur::ms(1), Dur::ms(10)))
        .expect("0.1 fits");
    let t = p.spawn_in_vm(vm, "hot", rt("hot", 30, 40, 7));
    p.manage_in_vm(vm, t, "hot", ControllerConfig::default());
    p.make_vm_elastic(
        vm,
        VmElasticConfig {
            controller: ShareControllerConfig {
                confirmations: 1,
                ..ShareControllerConfig::default()
            },
            ..VmElasticConfig::default()
        },
    );
    p.run(Time::ZERO + Dur::secs(6));

    // Regression: the guest bound used to be clamped with an arbitrary
    // 1e-6 epsilon. However hard the supervisor compresses, the honest
    // floor is the supervisor's own budget floor over the share period —
    // the smallest share it would actually grant.
    let floor = {
        let period = Dur::ms(10);
        p.supervisor().budget_floor(period).ratio(period)
    };
    let bound = p.vm_guest_bound(vm).expect("self-tuning guest");
    assert!(
        bound >= floor - 1e-9,
        "guest bound {bound} fell below the supervisor floor {floor}"
    );
    // And it really was compressed: demand (~0.75) never fit in the ~0.1
    // left under the host bound.
    assert!(bound <= 0.12, "grant was not compressed: {bound}");
    assert!(p.host_reserved_bandwidth() <= 0.5 + 1e-9);
}

#[test]
fn lowering_the_host_bound_recompresses_live_vm_shares_in_place() {
    let mut p = platform(0.9);
    let a = p
        .create_vm(VmConfig::self_tuning("a", Dur::ms(4), Dur::ms(10)))
        .expect("fits");
    let b = p
        .create_vm(VmConfig::self_tuning("b", Dur::ms(4), Dur::ms(10)))
        .expect("fits");
    p.run(Time::ZERO + Dur::ms(500));
    assert!(p.host_reserved_bandwidth() > 0.79);

    // The node-level loop claws back headroom: dropping U_lub below the
    // granted total recompresses both live shares immediately, in place.
    p.set_host_ulub(0.5);
    assert!(
        p.host_reserved_bandwidth() <= 0.5 + 1e-9,
        "recompression must bring the host under the new bound: {}",
        p.host_reserved_bandwidth()
    );
    let floor = {
        let period = Dur::ms(10);
        p.supervisor().budget_floor(period).ratio(period)
    };
    for vm in [a, b] {
        let bound = p.vm_guest_bound(vm).expect("self-tuning guest");
        // Proportional compression: each 0.4 share lands near 0.25.
        assert!(bound <= 0.30, "vm bound {bound} not recompressed");
        assert!(bound >= floor - 1e-9, "vm bound {bound} below floor");
    }
    // Raising the bound back grants nothing by itself — shares only grow
    // again when a tenant re-requests.
    p.set_host_ulub(0.9);
    assert!(p.host_reserved_bandwidth() <= 0.55);
}

mod nesting_props {
    use super::*;
    use proptest::prelude::*;
    use selftune_core::share::ShareControllerConfig;
    use selftune_virt::VmElasticConfig;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Satellite invariant: under arbitrary *elastic* re-request
        /// sequences (controllers probing up under compression, shedding
        /// idle shares, every knob randomised) the host bandwidth bound
        /// is never exceeded, and killing a VM releases its full
        /// re-granted share — not the admission-time nominal one.
        #[test]
        fn elastic_controllers_never_exceed_host_bound_and_kill_releases(
            seed in 0u64..10_000,
            ulub_pct in 60u64..96,
            vms_cfg in prop::collection::vec(
                // (share budget ms, guest wcet ms, guest period slot, margin %, alpha %)
                (1u64..8, 1u64..30, 0u64..3, 5u64..40, 20u64..101),
                1..4,
            ),
            chunks in 2usize..5,
        ) {
            let ulub = ulub_pct as f64 / 100.0;
            let mut p = platform(ulub);
            let mut vms = Vec::new();
            for (i, &(budget_ms, wcet_ms, pslot, margin_pct, alpha_pct)) in
                vms_cfg.iter().enumerate()
            {
                let cfg = VmConfig::self_tuning(
                    &format!("vm{i}"),
                    Dur::ms(budget_ms),
                    Dur::ms(10),
                );
                let Ok(vm) = p.create_vm(cfg) else { continue };
                let period_ms = 30 + 25 * pslot;
                let wcet = Dur::ms(wcet_ms.min(period_ms - 1));
                let label = format!("t{i}");
                let t = p.spawn_in_vm(
                    vm,
                    &label,
                    Box::new(PeriodicRt::new(
                        &label,
                        wcet,
                        Dur::ms(period_ms),
                        0.1,
                        Rng::new(seed ^ i as u64),
                    )),
                );
                p.manage_in_vm(vm, t, &label, ControllerConfig::default());
                p.make_vm_elastic(vm, VmElasticConfig {
                    control_period: Dur::ms(400),
                    controller: ShareControllerConfig {
                        margin: margin_pct as f64 / 100.0,
                        ewma_alpha: alpha_pct as f64 / 100.0,
                        confirmations: 1 + (seed % 3) as u32,
                        ..ShareControllerConfig::default()
                    },
                    ..VmElasticConfig::default()
                });
                vms.push(vm);
            }
            prop_assume!(!vms.is_empty());
            let mut t = Time::ZERO;
            for step in 0..chunks {
                t += Dur::ms(600 + 100 * step as u64);
                p.run(t);
                prop_assert!(
                    p.host_reserved_bandwidth() <= ulub + 1e-9,
                    "elastic re-requests oversubscribed the host: {} > {}",
                    p.host_reserved_bandwidth(),
                    ulub
                );
            }
            // Kill the first VM: however far its controller re-granted the
            // share (up or down), the *entire* live grant returns to the
            // host pool (modulo the 10 us floor residue).
            let vm = vms[0];
            let share = p.vm_share(vm);
            let before = p.host_reserved_bandwidth();
            prop_assert!(p.kill_vm(vm));
            let after = p.host_reserved_bandwidth();
            prop_assert!(
                after <= before - share + 2e-3,
                "kill released {} of the re-granted {share}",
                before - after
            );
            // The freed bandwidth is genuinely reusable under the bound.
            prop_assert!(after <= ulub + 1e-9);
        }

        /// Satellite invariant: however guests re-request mid-run, the
        /// *host* bandwidth (VM shares + flat reservations) never exceeds
        /// the host bound, and killing a VM releases its full share.
        #[test]
        fn host_bound_holds_under_guest_rerequests_and_kills(
            seed in 0u64..10_000,
            ulub_pct in 60u64..96,
            shares in prop::collection::vec((1u64..8, 0u64..3), 1..5),
            rerequests in prop::collection::vec((0usize..5, 1u64..12), 0..6),
            kill_first in any::<bool>(),
        ) {
            let ulub = ulub_pct as f64 / 100.0;
            let mut p = platform(ulub);
            let mut vms = Vec::new();
            for (i, &(budget_ms, _)) in shares.iter().enumerate() {
                let cfg = VmConfig::self_tuning(
                    &format!("vm{i}"),
                    Dur::ms(budget_ms),
                    Dur::ms(10),
                );
                if let Ok(vm) = p.create_vm(cfg) {
                    // A guest task that keeps the tenant's manager busy
                    // re-requesting (demand above most shares).
                    let label = format!("t{i}");
                    let t = p.spawn_in_vm(vm, &label, rt(&label, 5, 40, seed ^ i as u64));
                    p.manage_in_vm(vm, t, &label, ControllerConfig::default());
                    vms.push(vm);
                }
                prop_assert!(p.host_reserved_bandwidth() <= ulub + 1e-9);
            }
            // Run with periodic mid-run share re-requests.
            let mut t = Time::ZERO;
            for (step, &(which, budget_ms)) in rerequests.iter().enumerate() {
                t += Dur::ms(400 + 100 * step as u64);
                p.run(t);
                if !vms.is_empty() {
                    let vm = vms[which % vms.len()];
                    let granted = p.request_vm_share(vm, Dur::ms(budget_ms), Dur::ms(10));
                    prop_assert!(granted <= ulub + 1e-9);
                }
                prop_assert!(
                    p.host_reserved_bandwidth() <= ulub + 1e-9,
                    "host bound violated: {} > {}",
                    p.host_reserved_bandwidth(),
                    ulub
                );
            }
            p.run(t + Dur::ms(500));
            prop_assert!(p.host_reserved_bandwidth() <= ulub + 1e-9);

            // Killing a VM releases its share (modulo the tiny floor).
            if kill_first {
                if let Some(&vm) = vms.first() {
                    let share = p.vm_share(vm);
                    let before = p.host_reserved_bandwidth();
                    prop_assert!(p.kill_vm(vm));
                    let after = p.host_reserved_bandwidth();
                    // The floor residue is 10us per 10ms period = 1e-3.
                    prop_assert!(
                        after <= before - share + 2e-3,
                        "kill released {} of {share}",
                        before - after
                    );
                }
            }
        }
    }
}
