//! Demand-side bounds for periodic task sets.
//!
//! A periodic task is `(C, P)` with implicit deadline `D = P`, as in the
//! paper's task model (Section 3.1). The request bound function feeds the
//! fixed-priority (rate-monotonic) time-demand analysis, and the demand
//! bound function feeds EDF analysis; both are combined with a supply bound
//! in [`crate::minbudget`].

/// A periodic task `(C, P)` with implicit deadline.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct PeriodicTask {
    /// Worst-case execution time.
    pub wcet: f64,
    /// Period (= deadline).
    pub period: f64,
}

impl PeriodicTask {
    /// Creates a task.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < wcet ≤ period`.
    pub fn new(wcet: f64, period: f64) -> PeriodicTask {
        assert!(
            wcet > 0.0 && period > 0.0 && wcet <= period,
            "invalid task (C={wcet}, P={period})"
        );
        PeriodicTask { wcet, period }
    }

    /// CPU utilisation `C/P`.
    pub fn utilisation(&self) -> f64 {
        self.wcet / self.period
    }
}

/// Total utilisation of a task set.
pub fn total_utilisation(tasks: &[PeriodicTask]) -> f64 {
    tasks.iter().map(PeriodicTask::utilisation).sum()
}

/// Request bound function: worst-case work released by `tasks` in `[0, t]`
/// under synchronous release, `Σᵢ ⌈t/Pᵢ⌉·Cᵢ`.
pub fn rbf(tasks: &[PeriodicTask], t: f64) -> f64 {
    assert!(t >= 0.0);
    tasks
        .iter()
        .map(|task| (t / task.period).ceil() * task.wcet)
        .sum()
}

/// Demand bound function for implicit-deadline tasks: work that must
/// complete within any interval of length `t`, `Σᵢ ⌊t/Pᵢ⌋·Cᵢ`.
pub fn dbf(tasks: &[PeriodicTask], t: f64) -> f64 {
    assert!(t >= 0.0);
    tasks
        .iter()
        .map(|task| (t / task.period).floor() * task.wcet)
        .sum()
}

/// Time-demand testing points for task `i` (0-based, tasks sorted by
/// priority, highest first): all multiples of higher-or-equal-priority
/// periods up to and including `Dᵢ = Pᵢ`, plus `Dᵢ` itself.
///
/// Sorted ascending, deduplicated.
pub fn rm_testing_points(tasks: &[PeriodicTask], i: usize) -> Vec<f64> {
    let d = tasks[i].period;
    let mut pts = Vec::new();
    for task in &tasks[..=i] {
        let mut k = 1.0;
        while k * task.period <= d + 1e-9 {
            pts.push(k * task.period);
            k += 1.0;
        }
    }
    pts.push(d);
    pts.sort_by(|a, b| a.partial_cmp(b).expect("NaN testing point"));
    pts.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
    pts
}

/// EDF testing points: all job deadlines (multiples of each period) up to
/// and including the hyperperiod approximation `limit`.
pub fn edf_testing_points(tasks: &[PeriodicTask], limit: f64) -> Vec<f64> {
    let mut pts = Vec::new();
    for task in tasks {
        let mut k = 1.0;
        while k * task.period <= limit + 1e-9 {
            pts.push(k * task.period);
            k += 1.0;
        }
    }
    pts.sort_by(|a, b| a.partial_cmp(b).expect("NaN testing point"));
    pts.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
    pts
}

/// Least common multiple of the task periods (the hyperperiod), computed on
/// microsecond-resolution integers to avoid floating-point drift.
pub fn hyperperiod(tasks: &[PeriodicTask]) -> f64 {
    fn gcd(a: u64, b: u64) -> u64 {
        if b == 0 {
            a
        } else {
            gcd(b, a % b)
        }
    }
    let mut l: u64 = 1;
    for t in tasks {
        let p = (t.period * 1e6).round() as u64;
        assert!(p > 0, "period too small for hyperperiod computation");
        l = l / gcd(l, p) * p;
    }
    l as f64 / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_tasks() -> Vec<PeriodicTask> {
        // The Figure 2 task set: (3, 15), (5, 20), (5, 30) ms.
        vec![
            PeriodicTask::new(3.0, 15.0),
            PeriodicTask::new(5.0, 20.0),
            PeriodicTask::new(5.0, 30.0),
        ]
    }

    #[test]
    fn utilisation_matches_paper() {
        // 3/15 + 5/20 + 5/30 = 0.2 + 0.25 + 0.1667 ≈ 61.7%.
        let u = total_utilisation(&paper_tasks());
        assert!((u - 0.6166666).abs() < 1e-5, "u = {u}");
    }

    #[test]
    fn rbf_steps_at_releases() {
        let ts = paper_tasks();
        assert_eq!(rbf(&ts, 0.0), 0.0);
        // t=1: one job of each: 3+5+5 = 13.
        assert_eq!(rbf(&ts, 1.0), 13.0);
        // t=16: two of task1, one each of others: 6+5+5 = 16.
        assert_eq!(rbf(&ts, 16.0), 16.0);
    }

    #[test]
    fn dbf_counts_completed_deadlines() {
        let ts = paper_tasks();
        assert_eq!(dbf(&ts, 14.0), 0.0);
        assert_eq!(dbf(&ts, 15.0), 3.0);
        assert_eq!(dbf(&ts, 20.0), 8.0);
        // By t=30: two deadlines of (3,15), one of (5,20), one of (5,30).
        assert_eq!(dbf(&ts, 30.0), 16.0);
    }

    #[test]
    fn dbf_below_rbf() {
        let ts = paper_tasks();
        for i in 0..240 {
            let t = i as f64 * 0.5;
            assert!(dbf(&ts, t) <= rbf(&ts, t) + 1e-12);
        }
    }

    #[test]
    fn rm_points_for_lowest_priority_task() {
        let ts = paper_tasks();
        let pts = rm_testing_points(&ts, 2);
        // Multiples of 15 (15, 30), of 20 (20), of 30 (30) up to 30.
        assert_eq!(pts, vec![15.0, 20.0, 30.0]);
    }

    #[test]
    fn rm_points_for_highest_priority_task() {
        let ts = paper_tasks();
        let pts = rm_testing_points(&ts, 0);
        assert_eq!(pts, vec![15.0]);
    }

    #[test]
    fn hyperperiod_of_paper_set() {
        assert!((hyperperiod(&paper_tasks()) - 60.0).abs() < 1e-9);
    }

    #[test]
    fn edf_points_cover_all_deadlines() {
        let ts = paper_tasks();
        let pts = edf_testing_points(&ts, 60.0);
        assert_eq!(pts, vec![15.0, 20.0, 30.0, 40.0, 45.0, 60.0]);
    }

    #[test]
    #[should_panic(expected = "invalid task")]
    fn wcet_above_period_panics() {
        let _ = PeriodicTask::new(10.0, 5.0);
    }
}
