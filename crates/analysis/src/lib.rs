//! # selftune-analysis
//!
//! Schedulability analysis for CPU reservations, reproducing the analytical
//! figures of *"Self-tuning Schedulers for Legacy Real-Time Applications"*
//! (EuroSys 2010), Section 3.2:
//!
//! * [`sbf`] — supply bound functions (hard CBS, Shin–Lee periodic
//!   resource, linear bound).
//! * [`demand`] — periodic tasks, request/demand bound functions, testing
//!   points, hyperperiods.
//! * [`minbudget`] — minimum budget/bandwidth searches: a single task per
//!   server (Figure 1) and a rate-monotonic or EDF group sharing one
//!   reservation (Figure 2).
//!
//! Time is unit-agnostic `f64`; the experiments use milliseconds.

pub mod demand;
pub mod minbudget;
pub mod sbf;

pub use demand::{
    dbf, edf_testing_points, hyperperiod, rbf, rm_testing_points, total_utilisation, PeriodicTask,
};
pub use minbudget::{
    dedicated_servers_bandwidth, edf_schedulable_in_server, min_bandwidth_rm_group,
    min_bandwidth_single, min_budget_edf_group, min_budget_rm_group, min_budget_single,
    rm_schedulable_in_server,
};
pub use sbf::{cbs_sbf, linear_sbf, periodic_resource_sbf};
