//! Supply bound functions of CPU reservations.
//!
//! A reservation `(Q, T)` guarantees `Q` units of CPU in every period `T`.
//! The *supply bound function* `sbf(Δ)` lower-bounds the CPU supplied in any
//! interval of length `Δ`, and drives the choice of the server period
//! analysed in Section 3.2 (Figures 1 and 2) of the paper and in the
//! authors' companion work \[8\].
//!
//! Time is in abstract units (`f64`); callers use milliseconds throughout.
//!
//! Two models are provided:
//!
//! * [`cbs_sbf`] — hard CBS whose deadline equals the replenishment period:
//!   the worst case inserts a single initial blackout of `T − Q`, then
//!   supplies `Q` per period:
//!   `sbf(Δ) = ⌊Δ/T⌋·Q + max(0, Δ − ⌊Δ/T⌋·T − (T − Q))`.
//!   With `T = P` and `Q = C` a periodic task `(C, P)` is exactly
//!   schedulable, reproducing the 20% floor of Figure 1.
//! * [`periodic_resource_sbf`] — Shin & Lee's periodic resource model with
//!   the pessimistic double blackout `2(T − Q)`, for comparison with
//!   compositional-analysis literature.

/// Hard-CBS supply bound over an interval of length `delta`.
///
/// # Panics
///
/// Panics if `budget` or `period` is not positive, or `budget > period`,
/// or `delta` is negative.
pub fn cbs_sbf(budget: f64, period: f64, delta: f64) -> f64 {
    check_server(budget, period);
    assert!(delta >= 0.0, "delta {delta} must be non-negative");
    let k = (delta / period).floor();
    let into = delta - k * period - (period - budget);
    k * budget + into.max(0.0)
}

/// Shin–Lee periodic-resource supply bound (double initial blackout).
///
/// # Panics
///
/// Panics on the same invalid inputs as [`cbs_sbf`].
pub fn periodic_resource_sbf(budget: f64, period: f64, delta: f64) -> f64 {
    check_server(budget, period);
    assert!(delta >= 0.0, "delta {delta} must be non-negative");
    let blackout = period - budget;
    let shifted = delta - blackout;
    if shifted <= 0.0 {
        return 0.0;
    }
    let k = (shifted / period).floor();
    let into = shifted - k * period - blackout;
    k * budget + into.clamp(0.0, budget)
}

/// Linear lower bound of [`cbs_sbf`]:
/// `lsbf(Δ) = max(0, (Q/T)·(Δ − (T − Q)))`.
pub fn linear_sbf(budget: f64, period: f64, delta: f64) -> f64 {
    check_server(budget, period);
    ((budget / period) * (delta - (period - budget))).max(0.0)
}

fn check_server(budget: f64, period: f64) {
    assert!(
        budget > 0.0 && period > 0.0 && budget <= period,
        "invalid server (Q={budget}, T={period})"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_interval_supplies_nothing() {
        assert_eq!(cbs_sbf(2.0, 10.0, 0.0), 0.0);
        assert_eq!(periodic_resource_sbf(2.0, 10.0, 0.0), 0.0);
    }

    #[test]
    fn full_bandwidth_server_supplies_everything() {
        // Q = T: no blackout, supply = Δ.
        for d in [0.0, 3.5, 10.0, 31.4] {
            assert!((cbs_sbf(10.0, 10.0, d) - d).abs() < 1e-12);
        }
    }

    #[test]
    fn cbs_blackout_then_linear() {
        // (Q=2, T=10): blackout 8, then 2 per period.
        assert_eq!(cbs_sbf(2.0, 10.0, 8.0), 0.0);
        assert_eq!(cbs_sbf(2.0, 10.0, 9.0), 1.0);
        assert_eq!(cbs_sbf(2.0, 10.0, 10.0), 2.0);
        // Second period: flat until 18, then rises again.
        assert_eq!(cbs_sbf(2.0, 10.0, 15.0), 2.0);
        assert_eq!(cbs_sbf(2.0, 10.0, 19.0), 3.0);
        assert_eq!(cbs_sbf(2.0, 10.0, 20.0), 4.0);
    }

    #[test]
    fn figure1_anchor_point() {
        // Task C=20, P=100 scheduled by (Q=20, T=100): exactly feasible.
        assert!((cbs_sbf(20.0, 100.0, 100.0) - 20.0).abs() < 1e-12);
        // And by a half-period server (Q=10, T=50).
        assert!((cbs_sbf(10.0, 50.0, 100.0) - 20.0).abs() < 1e-12);
        // A slightly smaller budget is infeasible.
        assert!(cbs_sbf(19.9, 100.0, 100.0) < 20.0);
    }

    #[test]
    fn periodic_resource_is_more_pessimistic() {
        for d in [5.0, 10.0, 25.0, 50.0, 100.0] {
            let cbs = cbs_sbf(2.0, 10.0, d);
            let pr = periodic_resource_sbf(2.0, 10.0, d);
            assert!(pr <= cbs + 1e-12, "pr {pr} > cbs {cbs} at Δ={d}");
        }
    }

    #[test]
    fn periodic_resource_double_blackout() {
        // (Q=2, T=10): first supply only after 2(T−Q) = 16.
        assert_eq!(periodic_resource_sbf(2.0, 10.0, 16.0), 0.0);
        assert_eq!(periodic_resource_sbf(2.0, 10.0, 17.0), 1.0);
        assert_eq!(periodic_resource_sbf(2.0, 10.0, 18.0), 2.0);
        assert_eq!(periodic_resource_sbf(2.0, 10.0, 20.0), 2.0);
    }

    #[test]
    fn linear_bound_is_below_cbs() {
        for d in [0.0, 4.0, 8.0, 12.5, 33.0, 97.0] {
            let l = linear_sbf(2.0, 10.0, d);
            let s = cbs_sbf(2.0, 10.0, d);
            assert!(l <= s + 1e-12, "lsbf {l} > sbf {s} at Δ={d}");
        }
    }

    #[test]
    fn sbf_monotone_in_delta_and_budget() {
        let mut prev = 0.0;
        for i in 0..200 {
            let d = i as f64 * 0.5;
            let v = cbs_sbf(3.0, 10.0, d);
            assert!(v + 1e-12 >= prev);
            prev = v;
        }
        for i in 1..10 {
            let q = i as f64;
            assert!(cbs_sbf(q, 10.0, 25.0) <= cbs_sbf(q + 0.5, 10.0, 25.0) + 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "invalid server")]
    fn budget_above_period_panics() {
        let _ = cbs_sbf(11.0, 10.0, 5.0);
    }
}
