//! Minimum budget/bandwidth computation for a given server period.
//!
//! This is the analysis behind the paper's Figures 1 and 2: for a server
//! period `T`, find the minimum budget `Q` (hence bandwidth `Q/T`) such
//! that the task — or the whole task group, scheduled rate-monotonically
//! inside the single reservation — meets every deadline on the worst-case
//! supply [`crate::sbf::cbs_sbf`].
//!
//! Feasibility is monotone in `Q`, so a binary search converges; `Q = T`
//! (a dedicated CPU) is the feasibility anchor.

use crate::demand::{dbf, edf_testing_points, hyperperiod};
use crate::demand::{rm_testing_points, total_utilisation, PeriodicTask};
use crate::sbf::cbs_sbf;

/// Relative tolerance of the budget binary search.
const TOL: f64 = 1e-7;

fn binary_search_budget<F: Fn(f64) -> bool>(period: f64, feasible: F) -> Option<f64> {
    if !feasible(period) {
        return None;
    }
    let (mut lo, mut hi) = (0.0_f64, period);
    while hi - lo > TOL * period {
        let mid = 0.5 * (lo + hi);
        if mid > 0.0 && feasible(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi)
}

/// Minimum budget scheduling a single periodic task in a CBS of period
/// `server_period`. Always feasible (`Q = T` is a dedicated CPU).
///
/// # Panics
///
/// Panics if `server_period` is not positive.
pub fn min_budget_single(task: PeriodicTask, server_period: f64) -> f64 {
    assert!(server_period > 0.0);
    binary_search_budget(server_period, |q| {
        cbs_sbf(q, server_period, task.period) >= task.wcet - 1e-12
    })
    .expect("Q = T always schedules a single task with C <= P")
}

/// Minimum bandwidth `Q/T` for a single task — the y-axis of Figure 1.
pub fn min_bandwidth_single(task: PeriodicTask, server_period: f64) -> f64 {
    min_budget_single(task, server_period) / server_period
}

/// Fixed-priority (rate-monotonic) schedulability of `tasks` inside one
/// server `(q, t)`. `tasks` must be sorted by priority, highest first
/// (shortest period first for RM).
pub fn rm_schedulable_in_server(tasks: &[PeriodicTask], budget: f64, period: f64) -> bool {
    for i in 0..tasks.len() {
        let points = rm_testing_points(tasks, i);
        let ok = points.iter().any(|&pt| {
            let demand: f64 = tasks[..i]
                .iter()
                .map(|hp| (pt / hp.period).ceil() * hp.wcet)
                .sum::<f64>()
                + tasks[i].wcet;
            cbs_sbf(budget, period, pt) >= demand - 1e-9
        });
        if !ok {
            return false;
        }
    }
    true
}

/// Minimum budget scheduling the whole group rate-monotonically inside one
/// server of period `server_period`; `None` if even a dedicated CPU
/// (`Q = T`) fails RM analysis.
///
/// Tasks are sorted rate-monotonically internally.
pub fn min_budget_rm_group(tasks: &[PeriodicTask], server_period: f64) -> Option<f64> {
    assert!(server_period > 0.0 && !tasks.is_empty());
    let mut sorted = tasks.to_vec();
    sorted.sort_by(|a, b| a.period.partial_cmp(&b.period).expect("NaN period"));
    binary_search_budget(server_period, |q| {
        rm_schedulable_in_server(&sorted, q, server_period)
    })
}

/// Minimum bandwidth for the RM group — the "single reservation" curve of
/// Figure 2.
pub fn min_bandwidth_rm_group(tasks: &[PeriodicTask], server_period: f64) -> Option<f64> {
    min_budget_rm_group(tasks, server_period).map(|q| q / server_period)
}

/// EDF schedulability of `tasks` inside one server `(q, t)`: the demand
/// bound must stay below the supply bound at every deadline up to twice the
/// hyperperiod (plus the bandwidth necessary condition `Q/T ≥ U`).
pub fn edf_schedulable_in_server(tasks: &[PeriodicTask], budget: f64, period: f64) -> bool {
    let u = total_utilisation(tasks);
    if budget / period < u - 1e-12 {
        return false;
    }
    let limit = 2.0 * hyperperiod(tasks) + 2.0 * period;
    edf_testing_points(tasks, limit)
        .iter()
        .all(|&pt| dbf(tasks, pt) <= cbs_sbf(budget, period, pt) + 1e-9)
}

/// Minimum budget scheduling the group under EDF inside one server.
pub fn min_budget_edf_group(tasks: &[PeriodicTask], server_period: f64) -> Option<f64> {
    assert!(server_period > 0.0 && !tasks.is_empty());
    binary_search_budget(server_period, |q| {
        edf_schedulable_in_server(tasks, q, server_period)
    })
}

/// Total bandwidth with one dedicated, well-dimensioned server per task
/// (`T = Pᵢ`, `Q = Cᵢ`): the theoretical lower bound the paper contrasts
/// against (the cumulative utilisation).
pub fn dedicated_servers_bandwidth(tasks: &[PeriodicTask]) -> f64 {
    total_utilisation(tasks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1_task() -> PeriodicTask {
        PeriodicTask::new(20.0, 100.0)
    }

    fn fig2_tasks() -> Vec<PeriodicTask> {
        vec![
            PeriodicTask::new(3.0, 15.0),
            PeriodicTask::new(5.0, 20.0),
            PeriodicTask::new(5.0, 30.0),
        ]
    }

    #[test]
    fn matching_period_needs_exactly_utilisation() {
        // Figure 1: T = P = 100 → bandwidth 20%.
        let bw = min_bandwidth_single(fig1_task(), 100.0);
        assert!((bw - 0.2).abs() < 1e-4, "bw = {bw}");
    }

    #[test]
    fn submultiple_periods_also_need_utilisation() {
        // Figure 1: T ∈ {50, 25, 20} (P/k) → still 20%.
        for t in [50.0, 25.0, 20.0] {
            let bw = min_bandwidth_single(fig1_task(), t);
            assert!((bw - 0.2).abs() < 1e-3, "T={t}: bw = {bw}");
        }
    }

    #[test]
    fn off_submultiple_wastes_bandwidth() {
        // Figure 1's sawtooth: bandwidth rises between submultiples of P.
        // T = 36: ⌊100/36⌋ = 2 → 3Q − 8 ≥ 20 → Q = 9.33, bw ≈ 0.259.
        let bw36 = min_bandwidth_single(fig1_task(), 36.0);
        assert!((bw36 - 9.333 / 36.0).abs() < 1e-3, "bw36 = {bw36}");
        // T = 60: ⌊100/60⌋ = 1 → 2Q − 20 ≥ 20 → Q = 20, bw = 1/3.
        let bw60 = min_bandwidth_single(fig1_task(), 60.0);
        assert!((bw60 - 20.0 / 60.0).abs() < 1e-3, "bw60 = {bw60}");
        // Exact submultiple T = 100/3 is efficient again (valley).
        let bw_sub = min_bandwidth_single(fig1_task(), 100.0 / 3.0);
        assert!((bw_sub - 0.2).abs() < 1e-3, "bw_sub = {bw_sub}");
    }

    #[test]
    fn oversized_period_is_expensive() {
        // Figure 1: T = 200 > P → Q − (T − ... ) gives Q = 120, bw = 0.6.
        let bw = min_bandwidth_single(fig1_task(), 200.0);
        assert!((bw - 0.6).abs() < 1e-3, "bw = {bw}");
    }

    #[test]
    fn min_budget_is_tight() {
        let task = fig1_task();
        for t in [20.0, 33.0, 40.0, 100.0, 150.0] {
            let q = min_budget_single(task, t);
            assert!(cbs_sbf(q, t, task.period) >= task.wcet - 1e-6);
            if q > 1e-3 {
                assert!(cbs_sbf(q * 0.999, t, task.period) < task.wcet);
            }
        }
    }

    #[test]
    fn figure2_group_wastes_6_to_41_percent() {
        // The paper: single-reservation waste is between 6% and 41% over
        // the ≈ 62% utilisation, for server periods in a sane range.
        let tasks = fig2_tasks();
        let u = dedicated_servers_bandwidth(&tasks);
        let mut min_bw = f64::INFINITY;
        let mut max_bw: f64 = 0.0;
        let mut t = 2.0;
        while t <= 30.0 {
            if let Some(bw) = min_bandwidth_rm_group(&tasks, t) {
                min_bw = min_bw.min(bw);
                max_bw = max_bw.max(bw);
            }
            t += 0.5;
        }
        assert!(min_bw > u + 0.03, "best group bw {min_bw} vs u {u}");
        assert!(min_bw < u + 0.15, "best group bw {min_bw} unexpectedly bad");
        assert!(max_bw > u + 0.2, "worst group bw {max_bw}");
    }

    #[test]
    fn group_never_beats_dedicated_servers() {
        let tasks = fig2_tasks();
        let u = dedicated_servers_bandwidth(&tasks);
        for t in [5.0, 10.0, 15.0, 20.0, 25.0] {
            if let Some(bw) = min_bandwidth_rm_group(&tasks, t) {
                assert!(bw >= u - 1e-6, "T={t}: group bw {bw} < u {u}");
            }
        }
    }

    #[test]
    fn rm_schedulable_sanity() {
        let tasks = fig2_tasks();
        // Dedicated CPU: clearly schedulable (U ≈ 0.62, RM TDA passes).
        assert!(rm_schedulable_in_server(&tasks, 10.0, 10.0));
        // Starved server: clearly not.
        assert!(!rm_schedulable_in_server(&tasks, 0.5, 10.0));
    }

    #[test]
    fn edf_group_at_least_utilisation_and_at_most_rm() {
        let tasks = fig2_tasks();
        let u = total_utilisation(&tasks);
        for t in [5.0, 10.0, 15.0] {
            let edf = min_budget_edf_group(&tasks, t).expect("feasible") / t;
            let rm = min_bandwidth_rm_group(&tasks, t).expect("feasible");
            assert!(edf >= u - 1e-6, "T={t}: edf bw {edf} below U {u}");
            assert!(edf <= rm + 1e-6, "T={t}: edf bw {edf} above rm {rm}");
        }
    }

    #[test]
    fn infeasible_group_returns_none() {
        // Three tasks with U ≈ 0.97 cannot fit a tiny server period under
        // RM-in-server with blackouts... use an over-utilised set instead.
        let tasks = vec![PeriodicTask::new(9.0, 10.0), PeriodicTask::new(5.0, 20.0)];
        // U = 1.15 > 1: never schedulable.
        assert_eq!(min_budget_rm_group(&tasks, 10.0), None);
        assert_eq!(min_budget_edf_group(&tasks, 10.0), None);
    }
}
