//! Property-based tests for the schedulability analysis.

use proptest::prelude::*;
use selftune_analysis::{
    cbs_sbf, linear_sbf, min_bandwidth_rm_group, min_bandwidth_single, min_budget_single,
    periodic_resource_sbf, total_utilisation, PeriodicTask,
};

proptest! {
    #[test]
    fn sbf_is_monotone_and_bounded(
        q in 0.1f64..50.0,
        extra in 0.0f64..50.0,
        d1 in 0.0f64..500.0,
        d2 in 0.0f64..500.0,
    ) {
        let t = q + extra + 0.001;
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        let (s_lo, s_hi) = (cbs_sbf(q, t, lo), cbs_sbf(q, t, hi));
        prop_assert!(s_lo <= s_hi + 1e-9, "not monotone");
        prop_assert!(s_hi <= hi + 1e-9, "supply exceeds wall time");
        // Model ordering: linear ≤ periodic-resource ≤ cbs.
        prop_assert!(linear_sbf(q, t, hi) <= cbs_sbf(q, t, hi) + 1e-9);
        prop_assert!(periodic_resource_sbf(q, t, hi) <= cbs_sbf(q, t, hi) + 1e-9);
    }

    #[test]
    fn sbf_monotone_in_budget(
        q1 in 0.1f64..20.0,
        dq in 0.0f64..20.0,
        t_extra in 0.001f64..50.0,
        d in 0.0f64..500.0,
    ) {
        let q2 = q1 + dq;
        let t = q2 + t_extra;
        prop_assert!(cbs_sbf(q1, t, d) <= cbs_sbf(q2, t, d) + 1e-9);
    }

    /// The computed minimum budget is tight: sufficient at q*, and
    /// insufficient 1% below.
    #[test]
    fn min_budget_is_tight(
        c in 1.0f64..40.0,
        p_extra in 0.1f64..100.0,
        t in 1.0f64..300.0,
    ) {
        let p = c + p_extra;
        let task = PeriodicTask::new(c, p);
        let q = min_budget_single(task, t);
        prop_assert!(cbs_sbf(q, t, p) >= c - 1e-5, "q* insufficient");
        if q > 0.01 {
            prop_assert!(cbs_sbf(q * 0.99, t, p) < c, "q* not minimal");
        }
    }

    /// Bandwidth never goes below the task utilisation, and equals it at
    /// the task period and its exact submultiples.
    #[test]
    fn min_bandwidth_at_least_utilisation(
        c in 1.0f64..40.0,
        p_extra in 0.1f64..100.0,
        t in 1.0f64..300.0,
        k in 1u32..6,
    ) {
        let p = c + p_extra;
        let task = PeriodicTask::new(c, p);
        let u = task.utilisation();
        prop_assert!(min_bandwidth_single(task, t) >= u - 1e-5);
        let sub = p / f64::from(k);
        let bw = min_bandwidth_single(task, sub);
        prop_assert!((bw - u).abs() < 1e-4, "at P/{k}: {bw} vs u {u}");
    }

    /// A group in one reservation never beats dedicated servers
    /// (Figure 2's message), whenever the group is feasible at all.
    #[test]
    fn group_is_never_cheaper_than_utilisation(
        c1 in 1.0f64..5.0, e1 in 5.0f64..30.0,
        c2 in 1.0f64..5.0, e2 in 5.0f64..30.0,
        t in 2.0f64..40.0,
    ) {
        let tasks = vec![
            PeriodicTask::new(c1, c1 + e1),
            PeriodicTask::new(c2, c2 + e2),
        ];
        let u = total_utilisation(&tasks);
        if let Some(bw) = min_bandwidth_rm_group(&tasks, t) {
            prop_assert!(bw >= u - 1e-5, "group bw {bw} below utilisation {u}");
            prop_assert!(bw <= 1.0 + 1e-9);
        }
    }
}
