//! Property-based tests for the simulation substrate.

use proptest::prelude::*;
use selftune_simcore::event::EventQueue;
use selftune_simcore::scheduler::RoundRobin;
use selftune_simcore::stats;
use selftune_simcore::task::{Action, Script};
use selftune_simcore::time::{Dur, Time};
use selftune_simcore::Kernel;

proptest! {
    #[test]
    fn dur_add_sub_round_trip(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let (x, y) = (Dur::ns(a), Dur::ns(b));
        prop_assert_eq!((x + y) - y, x);
        prop_assert_eq!((x + y).saturating_sub(x), y);
    }

    #[test]
    fn dur_mul_f64_monotone(ns in 1u64..1_000_000_000_000, f1 in 0.0f64..10.0, f2 in 0.0f64..10.0) {
        let d = Dur::ns(ns);
        let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
        prop_assert!(d.mul_f64(lo) <= d.mul_f64(hi));
    }

    #[test]
    fn dur_ratio_inverts_mul(ns in 1_000u64..1_000_000_000, f in 0.01f64..100.0) {
        let d = Dur::ns(ns);
        let scaled = d.mul_f64(f);
        if !scaled.is_zero() {
            let r = scaled.ratio(d);
            prop_assert!((r - f).abs() / f < 1e-3, "{r} vs {f}");
        }
    }

    #[test]
    fn time_add_sub_round_trip(t in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let at = Time::from_ns(t);
        let dur = Dur::ns(d);
        prop_assert_eq!((at + dur) - dur, at);
        prop_assert_eq!((at + dur) - at, dur);
    }

    #[test]
    fn quantile_within_bounds(xs in prop::collection::vec(-1e6f64..1e6, 1..100), p in 0.0f64..=1.0) {
        let q = stats::quantile(&xs, p);
        prop_assert!(q >= stats::min(&xs) - 1e-9);
        prop_assert!(q <= stats::max(&xs) + 1e-9);
    }

    #[test]
    fn cdf_is_monotone_and_complete(xs in prop::collection::vec(-1e6f64..1e6, 1..100)) {
        let c = stats::cdf(&xs);
        prop_assert_eq!(c.len(), xs.len());
        prop_assert!((c.last().unwrap().1 - 1.0).abs() < 1e-12);
        for w in c.windows(2) {
            prop_assert!(w[0].0 <= w[1].0 && w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn histogram_preserves_count(xs in prop::collection::vec(-10.0f64..110.0, 0..200), bins in 1usize..50) {
        let h = stats::histogram(&xs, 0.0, 100.0, bins);
        let total: u64 = h.iter().map(|&(_, c)| c).sum();
        prop_assert_eq!(total as usize, xs.len());
    }

    #[test]
    fn pmf_sums_to_one(xs in prop::collection::vec(0.0f64..100.0, 1..200), bin in 0.1f64..5.0) {
        let p = stats::pmf(&xs, bin);
        let total: f64 = p.iter().map(|&(_, pr)| pr).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn event_queue_pops_sorted(times in prop::collection::vec(0u64..1_000_000, 0..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(Time::from_ns(t), i);
        }
        let mut last = Time::ZERO;
        let mut n = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            n += 1;
        }
        prop_assert_eq!(n, times.len());
    }

    /// CPU-time conservation: busy + idle equals elapsed wall time, and
    /// per-task thread times sum to busy time.
    #[test]
    fn kernel_conserves_cpu_time(
        works in prop::collection::vec((1u64..8_000, 1u64..8_000), 1..6),
        horizon_ms in 10u64..100,
    ) {
        let mut k = Kernel::new(RoundRobin::new(Dur::ms(4)));
        let mut ids = Vec::new();
        for &(c_us, gap_us) in &works {
            let script = Script::forever(vec![
                Action::Compute(Dur::us(c_us)),
                Action::SleepFor(Dur::us(gap_us)),
            ]);
            ids.push(k.spawn("w", Box::new(script)));
        }
        k.run_until(Time::ZERO + Dur::ms(horizon_ms));
        prop_assert_eq!(k.busy_time() + k.idle_time(), Dur::ms(horizon_ms));
        let total: Dur = ids.iter().map(|&t| k.thread_time(t)).sum();
        prop_assert_eq!(total, k.busy_time());
    }

    /// Determinism: identical seeds and scripts give identical outcomes.
    #[test]
    fn kernel_runs_are_deterministic(c_us in 1u64..5_000, gap_us in 1u64..5_000) {
        let run = || {
            let mut k = Kernel::new(RoundRobin::new(Dur::ms(4)));
            let script = Script::forever(vec![
                Action::Compute(Dur::us(c_us)),
                Action::SleepFor(Dur::us(gap_us)),
            ]);
            let id = k.spawn("w", Box::new(script));
            k.run_until(Time::ZERO + Dur::ms(50));
            (k.thread_time(id), k.context_switches(), k.idle_time())
        };
        prop_assert_eq!(run(), run());
    }
}
