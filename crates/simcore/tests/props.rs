//! Property-based tests for the simulation substrate.

use proptest::prelude::*;
use selftune_simcore::event::EventQueue;
use selftune_simcore::scheduler::RoundRobin;
use selftune_simcore::stats;
use selftune_simcore::task::{Action, Script};
use selftune_simcore::time::{Dur, Time};
use selftune_simcore::{Kernel, Metrics};

/// One step of a randomized event-queue workload.
#[derive(Clone, Debug)]
enum QueueOp {
    /// Push at the given offset (ns) with the next payload id.
    Push(u64),
    /// Push a FIFO burst of 3 events at the same instant.
    Burst(u64),
    /// Push a far-future event (stresses the wheel's overflow levels).
    Far(u64),
    /// Pop the earliest event.
    Pop,
    /// Pop only if due at the given instant.
    PopDue(u64),
}

fn queue_op_strategy() -> impl Strategy<Value = QueueOp> {
    prop_oneof![
        (0u64..5_000_000).prop_map(QueueOp::Push),
        (0u64..5_000_000).prop_map(QueueOp::Burst),
        (0u64..u64::MAX / 2).prop_map(QueueOp::Far),
        Just(QueueOp::Pop),
        (0u64..5_000_000).prop_map(QueueOp::PopDue),
    ]
}

/// Observable trace of a queue run: pop results and per-op peeks.
type QueueTrace = (Vec<Option<(Time, u32)>>, Vec<Option<Time>>);

/// Applies `ops` to a queue, returning the full observable trace.
fn drive_queue(mut q: EventQueue<u32>, ops: &[QueueOp]) -> QueueTrace {
    let mut pops = Vec::new();
    let mut peeks = Vec::new();
    let mut id = 0u32;
    for op in ops {
        match *op {
            QueueOp::Push(at) | QueueOp::Far(at) => {
                q.push(Time::from_ns(at), id);
                id += 1;
            }
            QueueOp::Burst(at) => {
                for _ in 0..3 {
                    q.push(Time::from_ns(at), id);
                    id += 1;
                }
            }
            QueueOp::Pop => pops.push(q.pop()),
            QueueOp::PopDue(now) => pops.push(q.pop_due(Time::from_ns(now))),
        }
        peeks.push(q.peek_time());
    }
    // Drain whatever is left so the whole pop order is compared.
    while let Some(e) = q.pop() {
        pops.push(Some(e));
    }
    (pops, peeks)
}

proptest! {
    #[test]
    fn dur_add_sub_round_trip(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let (x, y) = (Dur::ns(a), Dur::ns(b));
        prop_assert_eq!((x + y) - y, x);
        prop_assert_eq!((x + y).saturating_sub(x), y);
    }

    #[test]
    fn dur_mul_f64_monotone(ns in 1u64..1_000_000_000_000, f1 in 0.0f64..10.0, f2 in 0.0f64..10.0) {
        let d = Dur::ns(ns);
        let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
        prop_assert!(d.mul_f64(lo) <= d.mul_f64(hi));
    }

    #[test]
    fn dur_ratio_inverts_mul(ns in 1_000u64..1_000_000_000, f in 0.01f64..100.0) {
        let d = Dur::ns(ns);
        let scaled = d.mul_f64(f);
        if !scaled.is_zero() {
            let r = scaled.ratio(d);
            prop_assert!((r - f).abs() / f < 1e-3, "{r} vs {f}");
        }
    }

    #[test]
    fn time_add_sub_round_trip(t in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let at = Time::from_ns(t);
        let dur = Dur::ns(d);
        prop_assert_eq!((at + dur) - dur, at);
        prop_assert_eq!((at + dur) - at, dur);
    }

    #[test]
    fn quantile_within_bounds(xs in prop::collection::vec(-1e6f64..1e6, 1..100), p in 0.0f64..=1.0) {
        let q = stats::quantile(&xs, p);
        prop_assert!(q >= stats::min(&xs) - 1e-9);
        prop_assert!(q <= stats::max(&xs) + 1e-9);
    }

    #[test]
    fn cdf_is_monotone_and_complete(xs in prop::collection::vec(-1e6f64..1e6, 1..100)) {
        let c = stats::cdf(&xs);
        prop_assert_eq!(c.len(), xs.len());
        prop_assert!((c.last().unwrap().1 - 1.0).abs() < 1e-12);
        for w in c.windows(2) {
            prop_assert!(w[0].0 <= w[1].0 && w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn histogram_preserves_count(xs in prop::collection::vec(-10.0f64..110.0, 0..200), bins in 1usize..50) {
        let h = stats::histogram(&xs, 0.0, 100.0, bins);
        let total: u64 = h.iter().map(|&(_, c)| c).sum();
        prop_assert_eq!(total as usize, xs.len());
    }

    #[test]
    fn pmf_sums_to_one(xs in prop::collection::vec(0.0f64..100.0, 1..200), bin in 0.1f64..5.0) {
        let p = stats::pmf(&xs, bin);
        let total: f64 = p.iter().map(|&(_, pr)| pr).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn event_queue_pops_sorted(times in prop::collection::vec(0u64..1_000_000, 0..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(Time::from_ns(t), i);
        }
        let mut last = Time::ZERO;
        let mut n = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            n += 1;
        }
        prop_assert_eq!(n, times.len());
    }

    /// Differential check: the timing wheel delivers the byte-identical
    /// pop order (and peeks, and `pop_due` decisions) of the binary-heap
    /// fallback on randomized workloads, including equal-time FIFO bursts
    /// and far-future events that live in the wheel's overflow levels.
    #[test]
    fn wheel_matches_heap_pop_order(ops in prop::collection::vec(queue_op_strategy(), 0..120)) {
        let wheel = drive_queue(EventQueue::new(), &ops);
        let heap = drive_queue(EventQueue::heap_fallback(), &ops);
        prop_assert_eq!(wheel, heap);
    }

    /// Interned-key writes are indistinguishable from string-key writes.
    #[test]
    fn interned_and_string_metrics_agree(
        ops in prop::collection::vec(
            (0u8..3, 0usize..4, 0u64..1_000_000, 0u64..100), 0..150),
    ) {
        let names = ["a.frame", "b.bw", "c.ctx", "d.job"];
        let mut by_string = Metrics::new();
        let mut by_key = Metrics::new();
        let keys: Vec<_> = names.iter().map(|n| by_key.key(n)).collect();
        for &(kind, which, t_ns, n) in &ops {
            let (name, key) = (names[which], keys[which]);
            let at = Time::from_ns(t_ns);
            match kind {
                0 => {
                    by_string.mark(name, at);
                    by_key.mark_k(key, at);
                }
                1 => {
                    by_string.record(name, at, n as f64 * 0.5);
                    by_key.record_k(key, at, n as f64 * 0.5);
                }
                _ => {
                    by_string.add(name, n);
                    by_key.add_k(key, n);
                }
            }
        }
        for (&name, &key) in names.iter().zip(&keys) {
            prop_assert_eq!(by_string.marks(name), by_key.marks(name));
            prop_assert_eq!(by_key.marks(name), by_key.marks_k(key));
            prop_assert_eq!(by_string.series(name), by_key.series_k(key));
            prop_assert_eq!(by_string.counter(name), by_key.counter_k(key));
        }
        let a: Vec<&str> = by_string.mark_names().collect();
        let b: Vec<&str> = by_key.mark_names().collect();
        prop_assert_eq!(a, b);
    }

    /// CPU-time conservation: busy + idle equals elapsed wall time, and
    /// per-task thread times sum to busy time.
    #[test]
    fn kernel_conserves_cpu_time(
        works in prop::collection::vec((1u64..8_000, 1u64..8_000), 1..6),
        horizon_ms in 10u64..100,
    ) {
        let mut k = Kernel::new(RoundRobin::new(Dur::ms(4)));
        let mut ids = Vec::new();
        for &(c_us, gap_us) in &works {
            let script = Script::forever(vec![
                Action::Compute(Dur::us(c_us)),
                Action::SleepFor(Dur::us(gap_us)),
            ]);
            ids.push(k.spawn("w", Box::new(script)));
        }
        k.run_until(Time::ZERO + Dur::ms(horizon_ms));
        prop_assert_eq!(k.busy_time() + k.idle_time(), Dur::ms(horizon_ms));
        let total: Dur = ids.iter().map(|&t| k.thread_time(t)).sum();
        prop_assert_eq!(total, k.busy_time());
    }

    /// Determinism: identical seeds and scripts give identical outcomes.
    #[test]
    fn kernel_runs_are_deterministic(c_us in 1u64..5_000, gap_us in 1u64..5_000) {
        let run = || {
            let mut k = Kernel::new(RoundRobin::new(Dur::ms(4)));
            let script = Script::forever(vec![
                Action::Compute(Dur::us(c_us)),
                Action::SleepFor(Dur::us(gap_us)),
            ]);
            let id = k.spawn("w", Box::new(script));
            k.run_until(Time::ZERO + Dur::ms(50));
            (k.thread_time(id), k.context_switches(), k.idle_time())
        };
        prop_assert_eq!(run(), run());
    }
}
