//! Time-ordered event queue for the discrete-event engine.
//!
//! Events with equal timestamps are delivered in insertion order (FIFO),
//! which keeps simulations deterministic regardless of queue internals.
//!
//! # Implementation
//!
//! The queue is a **hierarchical timing wheel** (a calendar queue in the
//! sense of Brown '88, organised like the Linux/Tokio timer wheels):
//! nine levels of 64 slots each, level `l` resolving bits
//! `[12 + 6l, 12 + 6l + 6)` of the nanosecond timestamp — level 0 slots
//! are 2^12 ns = 4.096 µs wide — so the levels jointly cover the whole
//! 64-bit [`Time`] range; far-future timers land in the top (overflow)
//! levels and cascade down as the wheel advances. `push` is O(1): one
//! XOR + leading-zeros picks the level, a shift + mask picks the slot.
//! `pop` is O(levels) amortised: an occupancy bitmap per level (64 slots
//! ↔ one `u64`) finds the earliest non-empty slot with a
//! `trailing_zeros`, and higher-level slots are re-distributed (cascaded)
//! toward level zero as the wheel's epoch advances past them.
//!
//! Events already due — at or before the wheel epoch — sit in a small
//! sorted run (`due`, ordered by `(time, seq)` descending so the earliest
//! is at the back), which makes `peek_time` O(1) with `&self` and lets
//! `pop_due` decide with a single comparison.
//!
//! The previous `BinaryHeap` implementation is kept as a private fallback
//! ([`EventQueue::heap_fallback`], hidden from docs) so property tests and
//! the perf trajectory can differentially check and benchmark the wheel
//! against it; both deliver byte-identical pop orders.

use crate::time::Time;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(Debug)]
struct Entry<E> {
    at: Time,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Slots per wheel level (one occupancy bit per slot fits a `u64`).
const SLOT_BITS: u32 = 6;
const SLOTS: usize = 1 << SLOT_BITS;
/// Level-0 slot width, as a power of two: 2^12 ns = 4.096 µs. Coarser
/// slots mean fewer cascade hops per event (a timer t ms out starts two
/// levels lower) and whole-slot batched pops; events inside a fired slot
/// are ordered by one small sort instead of per-ns bucketing.
const GRAIN_BITS: u32 = 12;
/// Levels needed so `GRAIN_BITS + LEVELS * SLOT_BITS >= 64`: every `u64`
/// timestamp has a home level and no separate overflow list is needed —
/// the top levels act as the overflow tiers (level 7 starts at a 2^54 ns
/// ≈ 208-simulated-day offset from the epoch, though an event just past
/// a high epoch-bit boundary can transiently land there too).
const LEVELS: usize = 9;

/// The timing-wheel backend.
#[derive(Debug)]
struct Wheel<E> {
    /// `LEVELS × SLOTS` buckets, flattened (`level * SLOTS + slot`).
    slots: Vec<Vec<Entry<E>>>,
    /// Per-level occupancy bitmap: bit `s` set ⇔ `slots[l*SLOTS+s]` non-empty.
    occ: [u64; LEVELS],
    /// The due run: all queued events with `at < epoch`, sorted by
    /// `(at, seq)` descending — the earliest event is `due.last()`.
    due: Vec<Entry<E>>,
    /// Wheel epoch: every event stored in `slots` has `at >= epoch`.
    epoch: u64,
    /// Events stored in `slots` (excludes `due`).
    in_wheel: usize,
}

impl<E> Wheel<E> {
    fn new() -> Wheel<E> {
        Wheel {
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occ: [0; LEVELS],
            due: Vec::new(),
            epoch: 0,
            in_wheel: 0,
        }
    }

    /// Level resolving the highest bit in which `at` differs from the
    /// epoch (level 0 if they only differ within one level-0 range).
    fn level_for(epoch: u64, at: u64) -> usize {
        let x = (at ^ epoch) | ((1 << (GRAIN_BITS + SLOT_BITS)) - 1);
        (((63 - x.leading_zeros()) - GRAIN_BITS) / SLOT_BITS) as usize
    }

    /// Shift of the bit group resolved by `level`.
    fn shift_of(level: usize) -> u32 {
        GRAIN_BITS + SLOT_BITS * level as u32
    }

    fn slot_for(level: usize, at: u64) -> usize {
        ((at >> Self::shift_of(level)) & (SLOTS as u64 - 1)) as usize
    }

    fn insert(&mut self, entry: Entry<E>) {
        let at = entry.at.as_ns();
        if at < self.epoch || (self.in_wheel == 0 && self.due.is_empty()) {
            // Due region (or empty queue: adopt the event's instant as the
            // epoch so it becomes the due run without touching the wheel).
            if at >= self.epoch {
                self.epoch = at.saturating_add(1);
            }
            let pos = self
                .due
                .partition_point(|e| (e.at, e.seq) > (entry.at, entry.seq));
            self.due.insert(pos, entry);
        } else {
            self.insert_wheel(entry);
            if self.due.is_empty() {
                // Keep the invariant: a non-empty queue always has a
                // non-empty due run, so `peek_time` works with `&self`.
                self.advance();
            }
        }
    }

    fn insert_wheel(&mut self, entry: Entry<E>) {
        let at = entry.at.as_ns();
        debug_assert!(at >= self.epoch);
        let level = Self::level_for(self.epoch, at);
        let slot = Self::slot_for(level, at);
        self.slots[level * SLOTS + slot].push(entry);
        self.occ[level] |= 1 << slot;
        self.in_wheel += 1;
    }

    /// Moves the earliest pending wheel events into the due run, cascading
    /// coarser levels down until a level-0 slot fires. A fired level-0
    /// slot spans one `2^GRAIN_BITS` ns window; its events become the due
    /// run with one small `(at, seq)` sort.
    fn advance(&mut self) {
        debug_assert!(self.due.is_empty());
        // Re-home events whose coarse slot covers the epoch itself: when
        // the previous level-0 fire carried the epoch across a level-l
        // boundary, the events parked in that level-l slot fall into the
        // now-current window and belong at finer levels — left coarse,
        // they could fire after later level-0 events. A fresh push never
        // lands on its level's epoch slot (the level is chosen by the
        // highest differing bit group), so the sweep strictly lowers each
        // swept event's level; and mid-advance cascades only move the
        // epoch to window starts that cannot cover an occupied slot, so
        // one sweep per advance suffices.
        for level in 1..LEVELS {
            let pos = Self::slot_for(level, self.epoch);
            if self.occ[level] & (1 << pos) != 0 {
                self.cascade(level * SLOTS + pos, level, pos);
            }
        }
        while self.in_wheel > 0 {
            let level = (0..LEVELS)
                .find(|&l| self.occ[l] != 0)
                .expect("in_wheel > 0 but all levels empty");
            let pos = Self::slot_for(level, self.epoch);
            // All wheel events are at or after the epoch, and share every
            // group above `level` with it, so their slots never wrap: the
            // earliest occupied slot is the lowest set bit at/after `pos`.
            let masked = self.occ[level] & (u64::MAX << pos);
            debug_assert!(masked != 0, "occupied slot behind the epoch");
            let slot = masked.trailing_zeros() as usize;
            let bucket = level * SLOTS + slot;
            if level > 0 {
                // Cascade toward level 0: re-home the slot's events
                // against the slot's own window start; each lands at a
                // strictly lower level.
                let shift = Self::shift_of(level);
                // Bits below and including this level's group (the top
                // level's group reaches past bit 63, hence the check).
                let low_bits = shift + SLOT_BITS;
                let low_mask = if low_bits >= 64 {
                    u64::MAX
                } else {
                    (1u64 << low_bits) - 1
                };
                let window = (self.epoch & !low_mask) | ((slot as u64) << shift);
                debug_assert!(window >= self.epoch);
                self.epoch = window;
                self.cascade(bucket, level, slot);
                continue;
            }
            // Fire the whole level-0 slot: everything in the window
            // becomes the due run, ordered by (at, seq) descending so the
            // earliest pops first and equal timestamps stay FIFO. The old
            // (drained) due buffer is recycled as the new slot vector, so
            // steady-state operation allocates nothing.
            let window = (self.epoch & !((1 << (GRAIN_BITS + SLOT_BITS)) - 1))
                | ((slot as u64) << GRAIN_BITS);
            // The epoch may sit unaligned inside the fired window (it is
            // set to `at + 1` when a push hits an empty queue), so
            // `window` can round below it — but never by a full slot.
            debug_assert!(window.saturating_add(1 << GRAIN_BITS) > self.epoch);
            std::mem::swap(&mut self.slots[bucket], &mut self.due);
            self.occ[0] &= !(1 << slot);
            self.in_wheel -= self.due.len();
            debug_assert!(self.due.iter().all(|e| e.at.as_ns() >= self.epoch));
            self.epoch = window.saturating_add(1 << GRAIN_BITS);
            self.due
                .sort_unstable_by_key(|e| std::cmp::Reverse((e.at, e.seq)));
            return;
        }
    }

    /// Empties `bucket` (at `level`/`slot`), re-inserting its events at
    /// strictly lower levels relative to the current epoch. The bucket's
    /// buffer is handed back afterwards so no allocation churns.
    fn cascade(&mut self, bucket: usize, level: usize, slot: usize) {
        let mut entries = std::mem::take(&mut self.slots[bucket]);
        self.occ[level] &= !(1 << slot);
        self.in_wheel -= entries.len();
        for e in entries.drain(..) {
            debug_assert!(e.at.as_ns() >= self.epoch);
            self.insert_wheel(e);
        }
        self.slots[bucket] = entries;
    }

    fn pop(&mut self) -> Option<(Time, E)> {
        let e = self.due.pop()?;
        if self.due.is_empty() && self.in_wheel > 0 {
            self.advance();
        }
        Some((e.at, e.payload))
    }

    fn peek_time(&self) -> Option<Time> {
        self.due.last().map(|e| e.at)
    }

    fn clear(&mut self) {
        self.due.clear();
        for level in 0..LEVELS {
            let mut bits = self.occ[level];
            while bits != 0 {
                let slot = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                self.slots[level * SLOTS + slot].clear();
            }
            self.occ[level] = 0;
        }
        self.in_wheel = 0;
        self.epoch = 0;
    }
}

#[derive(Debug)]
enum Backend<E> {
    Wheel(Wheel<E>),
    Heap(BinaryHeap<Entry<E>>),
}

/// A deterministic min-queue of `(Time, E)` pairs.
///
/// # Examples
///
/// ```
/// use selftune_simcore::event::EventQueue;
/// use selftune_simcore::time::{Dur, Time};
///
/// let mut q = EventQueue::new();
/// q.push(Time::ZERO + Dur::ms(5), "b");
/// q.push(Time::ZERO + Dur::ms(1), "a");
/// assert_eq!(q.pop(), Some((Time::ZERO + Dur::ms(1), "a")));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    backend: Backend<E>,
    seq: u64,
    len: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue (timing-wheel backed).
    pub fn new() -> EventQueue<E> {
        EventQueue {
            backend: Backend::Wheel(Wheel::new()),
            seq: 0,
            len: 0,
        }
    }

    /// Creates an empty queue backed by the original binary heap.
    ///
    /// The fallback exists for differential property tests and for the
    /// before/after perf trajectory (`perf_report`); simulations should
    /// use [`EventQueue::new`].
    #[doc(hidden)]
    pub fn heap_fallback() -> EventQueue<E> {
        EventQueue {
            backend: Backend::Heap(BinaryHeap::new()),
            seq: 0,
            len: 0,
        }
    }

    /// Schedules `payload` at instant `at`.
    pub fn push(&mut self, at: Time, payload: E) {
        let seq = self.seq;
        self.seq += 1;
        self.len += 1;
        let entry = Entry { at, seq, payload };
        match &mut self.backend {
            Backend::Wheel(w) => w.insert(entry),
            Backend::Heap(h) => h.push(entry),
        }
    }

    /// Returns the timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<Time> {
        match &self.backend {
            Backend::Wheel(w) => w.peek_time(),
            Backend::Heap(h) => h.peek().map(|e| e.at),
        }
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        let out = match &mut self.backend {
            Backend::Wheel(w) => w.pop(),
            Backend::Heap(h) => h.pop().map(|e| (e.at, e.payload)),
        };
        if out.is_some() {
            self.len -= 1;
        }
        out
    }

    /// Removes the earliest event only if it is due at or before `now`:
    /// one comparison against the cached earliest timestamp, then a pop.
    pub fn pop_due(&mut self, now: Time) -> Option<(Time, E)> {
        match &mut self.backend {
            Backend::Wheel(w) => match w.due.last() {
                Some(e) if e.at <= now => {
                    let out = w.pop();
                    self.len -= 1;
                    out
                }
                _ => None,
            },
            Backend::Heap(h) => match h.peek() {
                Some(e) if e.at <= now => {
                    self.len -= 1;
                    h.pop().map(|e| (e.at, e.payload))
                }
                _ => None,
            },
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Discards all pending events.
    pub fn clear(&mut self) {
        match &mut self.backend {
            Backend::Wheel(w) => w.clear(),
            Backend::Heap(h) => h.clear(),
        }
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Dur;

    fn at(ms: u64) -> Time {
        Time::ZERO + Dur::ms(ms)
    }

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(at(30), 3);
        q.push(at(10), 1);
        q.push(at(20), 2);
        assert_eq!(q.pop(), Some((at(10), 1)));
        assert_eq!(q.pop(), Some((at(20), 2)));
        assert_eq!(q.pop(), Some((at(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_for_equal_times() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(at(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((at(5), i)));
        }
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.push(at(10), "x");
        assert_eq!(q.pop_due(at(9)), None);
        assert_eq!(q.pop_due(at(10)), Some((at(10), "x")));
        assert!(q.is_empty());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(at(1), ());
        assert_eq!(q.peek_time(), Some(at(1)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn clear_empties() {
        let mut q = EventQueue::new();
        q.push(at(1), ());
        q.push(at(2), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn clear_then_reuse() {
        let mut q = EventQueue::new();
        q.push(at(500), 1);
        q.clear();
        q.push(at(3), 2);
        q.push(at(700), 3);
        assert_eq!(q.pop(), Some((at(3), 2)));
        assert_eq!(q.pop(), Some((at(700), 3)));
    }

    #[test]
    fn far_future_events_cascade_down() {
        let mut q = EventQueue::new();
        // Span every wheel level: from 1 ns to ~18 sim-years out.
        let times: Vec<u64> = (0..60).map(|b| 1u64 << b).collect();
        for (i, &t) in times.iter().enumerate() {
            q.push(Time::from_ns(t), i);
        }
        let mut last = Time::ZERO;
        for _ in 0..times.len() {
            let (t, _) = q.pop().expect("event");
            assert!(t >= last);
            last = t;
        }
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(at(40), 'a');
        q.push(at(10), 'b');
        assert_eq!(q.pop(), Some((at(10), 'b')));
        // Pushing earlier than the pending event but after the popped one.
        q.push(at(20), 'c');
        q.push(at(20), 'd');
        assert_eq!(q.pop(), Some((at(20), 'c')));
        assert_eq!(q.pop(), Some((at(20), 'd')));
        assert_eq!(q.pop(), Some((at(40), 'a')));
    }

    #[test]
    fn push_at_popped_instant_goes_last_among_equals() {
        let mut q = EventQueue::new();
        q.push(at(5), 1);
        assert_eq!(q.pop(), Some((at(5), 1)));
        q.push(at(5), 2);
        q.push(at(7), 3);
        assert_eq!(q.pop(), Some((at(5), 2)));
        assert_eq!(q.pop(), Some((at(7), 3)));
    }

    #[test]
    fn heap_fallback_matches_basic_behaviour() {
        let mut q = EventQueue::heap_fallback();
        q.push(at(3), 1);
        q.push(at(1), 2);
        q.push(at(1), 3);
        assert_eq!(q.peek_time(), Some(at(1)));
        assert_eq!(q.pop(), Some((at(1), 2)));
        assert_eq!(q.pop_due(at(0)), None);
        assert_eq!(q.pop_due(at(1)), Some((at(1), 3)));
        assert_eq!(q.len(), 1);
    }
}
