//! Time-ordered event queue for the discrete-event engine.
//!
//! Events with equal timestamps are delivered in insertion order (FIFO),
//! which keeps simulations deterministic regardless of heap internals.

use crate::time::Time;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(Debug)]
struct Entry<E> {
    at: Time,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A deterministic min-queue of `(Time, E)` pairs.
///
/// # Examples
///
/// ```
/// use selftune_simcore::event::EventQueue;
/// use selftune_simcore::time::{Dur, Time};
///
/// let mut q = EventQueue::new();
/// q.push(Time::ZERO + Dur::ms(5), "b");
/// q.push(Time::ZERO + Dur::ms(1), "a");
/// assert_eq!(q.pop(), Some((Time::ZERO + Dur::ms(1), "a")));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `payload` at instant `at`.
    pub fn push(&mut self, at: Time, payload: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Returns the timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.at)
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|e| (e.at, e.payload))
    }

    /// Removes the earliest event only if it is due at or before `now`.
    pub fn pop_due(&mut self, now: Time) -> Option<(Time, E)> {
        match self.peek_time() {
            Some(t) if t <= now => self.pop(),
            _ => None,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Discards all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Dur;

    fn at(ms: u64) -> Time {
        Time::ZERO + Dur::ms(ms)
    }

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(at(30), 3);
        q.push(at(10), 1);
        q.push(at(20), 2);
        assert_eq!(q.pop(), Some((at(10), 1)));
        assert_eq!(q.pop(), Some((at(20), 2)));
        assert_eq!(q.pop(), Some((at(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_for_equal_times() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(at(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((at(5), i)));
        }
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.push(at(10), "x");
        assert_eq!(q.pop_due(at(9)), None);
        assert_eq!(q.pop_due(at(10)), Some((at(10), "x")));
        assert!(q.is_empty());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(at(1), ());
        assert_eq!(q.peek_time(), Some(at(1)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn clear_empties() {
        let mut q = EventQueue::new();
        q.push(at(1), ());
        q.push(at(2), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }
}
