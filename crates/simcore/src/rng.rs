//! Deterministic random-number generation for the simulator.
//!
//! A sealed xoshiro256++ generator keeps every experiment reproducible from a
//! single `u64` seed, with [`Rng::fork`] providing independent child streams
//! for per-component randomness (workload noise, arrival jitter, ...).
//!
//! The distribution helpers cover everything the workload models need:
//! uniform, Bernoulli, normal (Box–Muller), exponential and Pareto.

use crate::time::Dur;

/// SplitMix64 step: expands a seed into xoshiro state, and serves as the
/// workspace's canonical stateless seed-derivation primitive.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256++ pseudo-random generator.
///
/// # Examples
///
/// ```
/// use selftune_simcore::rng::Rng;
///
/// let mut a = Rng::new(42);
/// let mut b = Rng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
    /// Cached second output of the Box–Muller transform.
    spare_normal: Option<f64>,
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Rng {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng {
            s,
            spare_normal: None,
        }
    }

    /// Derives an independent child stream; deterministic in `self` state.
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }

    /// Returns the next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// Uses the modulo method; the bias is < 2⁻³² for the ranges used in the
    /// simulator and irrelevant for workload generation.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "Rng::range_u64: empty range [{lo}, {hi})");
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform index in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        self.range_u64(0, n as u64) as usize
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or not finite.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi && lo.is_finite() && hi.is_finite());
        lo + (hi - lo) * self.f64()
    }

    /// Bernoulli trial with probability `p` of returning `true`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Standard normal sample via the Box–Muller transform.
    pub fn std_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Box–Muller: u must be in (0, 1] to keep ln(u) finite.
        let u = 1.0 - self.f64();
        let v = self.f64();
        let r = (-2.0 * u.ln()).sqrt();
        let theta = core::f64::consts::TAU * v;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, sd: f64) -> f64 {
        mean + sd * self.std_normal()
    }

    /// Exponential sample with the given rate (mean `1/rate`).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive.
    pub fn exp(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "Rng::exp: rate must be positive");
        -(1.0 - self.f64()).ln() / rate
    }

    /// Pareto sample with minimum `scale` and tail index `shape`.
    ///
    /// # Panics
    ///
    /// Panics if `scale` or `shape` is not strictly positive.
    pub fn pareto(&mut self, scale: f64, shape: f64) -> f64 {
        assert!(scale > 0.0 && shape > 0.0);
        scale / (1.0 - self.f64()).powf(1.0 / shape)
    }

    /// Duration sample: normal around `mean` with deviation `sd`, truncated
    /// below at `floor`. Used for execution-time noise.
    pub fn normal_dur(&mut self, mean: Dur, sd: Dur, floor: Dur) -> Dur {
        let v = self.normal(mean.as_secs_f64(), sd.as_secs_f64());
        let fl = floor.as_secs_f64();
        Dur::from_secs_f64(if v < fl { fl } else { v })
    }

    /// Uniform duration in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn uniform_dur(&mut self, lo: Dur, hi: Dur) -> Dur {
        Dur::ns(self.range_u64(lo.as_ns(), hi.as_ns()))
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = Rng::new(3);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(11);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_mean_is_centred() {
        let mut r = Rng::new(5);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.uniform(0.0, 10.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut r = Rng::new(9);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.02, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn exp_mean() {
        let mut r = Rng::new(13);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| r.exp(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn pareto_respects_scale() {
        let mut r = Rng::new(17);
        for _ in 0..10_000 {
            assert!(r.pareto(1.5, 2.0) >= 1.5);
        }
    }

    #[test]
    fn bernoulli_frequency() {
        let mut r = Rng::new(19);
        let hits = (0..100_000).filter(|_| r.bernoulli(0.3)).count();
        let p = hits as f64 / 100_000.0;
        assert!((p - 0.3).abs() < 0.01, "p {p}");
    }

    #[test]
    fn normal_dur_truncates_at_floor() {
        let mut r = Rng::new(23);
        for _ in 0..10_000 {
            let d = r.normal_dur(Dur::ms(1), Dur::ms(5), Dur::us(100));
            assert!(d >= Dur::us(100));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(29);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn range_bounds() {
        let mut r = Rng::new(31);
        for _ in 0..10_000 {
            let v = r.range_u64(10, 20);
            assert!((10..20).contains(&v));
        }
    }
}
