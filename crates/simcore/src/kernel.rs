//! The discrete-event kernel: interprets task workloads, drives the
//! scheduler, charges CPU time, and feeds the syscall tracer hook.
//!
//! The engine advances virtual time from event to event on a single
//! simulated CPU (the paper's testbed pins the experiment to one core of a
//! Core 2 Duo). All state the paper's machinery observes is produced here:
//!
//! * syscall entry/exit timestamps (through the installed [`SyscallHook`]),
//! * per-task consumed CPU time ([`Kernel::thread_time`], the
//!   `CLOCK_THREAD_CPUTIME_ID` sensor),
//! * scheduler-internal state (via the scheduler object itself).

use crate::event::EventQueue;
use crate::metrics::Metrics;
use crate::scheduler::Scheduler;
use crate::syscall::SyscallNr;
use crate::task::{Action, Blocking, TaskCtx, TaskId, Workload};
use crate::time::{Dur, Time};

/// Observer of system-call entry and exit edges (the tracer).
///
/// The returned [`Dur`] is the *tracing overhead* charged to the traced
/// task's critical path: in-kernel logging cost for the paper's `qtrace`, or
/// a pair of context switches for `ptrace`-based tools (Section 5.1,
/// Table 1).
pub trait SyscallHook {
    /// Called at syscall entry; returns overhead to charge to the task.
    fn on_enter(&mut self, task: TaskId, nr: SyscallNr, now: Time) -> Dur;
    /// Called at syscall exit; returns overhead to charge to the task.
    ///
    /// For blocking calls the exit edge fires when the task is woken, which
    /// is when the return path executes.
    fn on_exit(&mut self, task: TaskId, nr: SyscallNr, now: Time) -> Dur;

    /// Called when a blocked task transitions back to ready — the
    /// scheduler-event source the paper's Section 6 proposes as an
    /// alternative to syscall tracing (ftrace's `sched_wakeup`). The
    /// default does nothing.
    fn on_wake(&mut self, task: TaskId, now: Time) -> Dur {
        let _ = (task, now);
        Dur::ZERO
    }
}

/// A no-op hook: tracing disabled (the paper's NOTRACE baseline).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoTrace;

impl SyscallHook for NoTrace {
    fn on_enter(&mut self, _task: TaskId, _nr: SyscallNr, _now: Time) -> Dur {
        Dur::ZERO
    }
    fn on_exit(&mut self, _task: TaskId, _nr: SyscallNr, _now: Time) -> Dur {
        Dur::ZERO
    }
}

/// Coarse task state, as visible to experiments and tests.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum TaskState {
    /// Spawned but its start instant has not been reached yet.
    NotStarted,
    /// Ready or currently running.
    Ready,
    /// Blocked in a sleep or blocking syscall.
    Blocked,
    /// Terminated.
    Exited,
}

#[derive(Debug)]
enum Pending {
    Compute {
        remaining: Dur,
    },
    Syscall {
        nr: SyscallNr,
        remaining: Dur,
        block: Blocking,
    },
}

impl Pending {
    fn remaining(&self) -> Dur {
        match self {
            Pending::Compute { remaining } | Pending::Syscall { remaining, .. } => *remaining,
        }
    }

    fn consume(&mut self, dt: Dur) {
        match self {
            Pending::Compute { remaining } | Pending::Syscall { remaining, .. } => {
                *remaining = remaining.saturating_sub(dt);
            }
        }
    }
}

struct Tcb {
    name: String,
    workload: Box<dyn Workload>,
    state: TaskState,
    pending: Option<Pending>,
    /// Kernel overhead (context switch, syscall return path) to burn before
    /// `pending` progresses.
    debt: Dur,
    /// Syscall whose exit edge must be traced when the task wakes.
    trace_exit: Option<SyscallNr>,
    /// Cumulative CPU consumed (thread time).
    exec: Dur,
    /// Number of syscalls issued.
    syscalls: u64,
}

/// The stand-in workload of a reclaimed (exited) task: exits immediately
/// if it is ever asked for work, which cannot happen — see
/// [`Kernel::reclaim`].
struct Tombstone;

impl Workload for Tombstone {
    fn next(&mut self, _ctx: &mut TaskCtx<'_>) -> Action {
        Action::Exit
    }
}

#[derive(Debug, Clone, Copy)]
enum KEvent {
    Start(TaskId),
    Wake(TaskId),
}

/// Maximum consecutive zero-duration actions a workload may yield before the
/// kernel assumes it is livelocked and panics with a diagnostic.
const ACTION_FETCH_LIMIT: u32 = 10_000;
/// Maximum scheduler timer firings processed at a single instant.
const TIMER_BURST_LIMIT: u32 = 100_000;

/// The discrete-event kernel simulating one CPU under scheduler `S`.
///
/// # Examples
///
/// ```
/// use selftune_simcore::kernel::Kernel;
/// use selftune_simcore::scheduler::RoundRobin;
/// use selftune_simcore::task::{Action, Script};
/// use selftune_simcore::time::{Dur, Time};
///
/// let mut k = Kernel::new(RoundRobin::new(Dur::ms(4)));
/// let t = k.spawn("worker", Box::new(Script::once(vec![
///     Action::Compute(Dur::ms(3)),
///     Action::Exit,
/// ])));
/// k.run_until(Time::ZERO + Dur::ms(10));
/// assert_eq!(k.thread_time(t), Dur::ms(3));
/// ```
pub struct Kernel<S: Scheduler> {
    now: Time,
    events: EventQueue<KEvent>,
    tasks: Vec<Tcb>,
    sched: S,
    hook: Box<dyn SyscallHook>,
    metrics: Metrics,
    current: Option<TaskId>,
    cs_cost: Dur,
    ctx_switches: u64,
    idle: Dur,
    busy: Dur,
    zero_progress: u32,
}

impl<S: Scheduler> Kernel<S> {
    /// Creates a kernel with the given scheduling policy and tracing
    /// disabled.
    pub fn new(sched: S) -> Kernel<S> {
        Kernel {
            now: Time::ZERO,
            events: EventQueue::new(),
            tasks: Vec::new(),
            sched,
            hook: Box::new(NoTrace),
            metrics: Metrics::new(),
            current: None,
            cs_cost: Dur::ZERO,
            ctx_switches: 0,
            idle: Dur::ZERO,
            busy: Dur::ZERO,
            zero_progress: 0,
        }
    }

    /// Sets the per-dispatch context-switch cost charged to the incoming
    /// task.
    pub fn set_context_switch_cost(&mut self, cost: Dur) {
        self.cs_cost = cost;
    }

    /// Switches the engine to the binary-heap event queue (the pre-wheel
    /// implementation), for before/after benchmarking only.
    ///
    /// # Panics
    ///
    /// Panics if events are already pending (call before any `spawn`).
    #[doc(hidden)]
    pub fn use_heap_event_queue(&mut self) {
        assert!(
            self.events.is_empty(),
            "switch the event queue before spawning tasks"
        );
        self.events = EventQueue::heap_fallback();
    }

    /// Installs a syscall tracer hook, returning the previous one.
    pub fn install_hook(&mut self, hook: Box<dyn SyscallHook>) -> Box<dyn SyscallHook> {
        core::mem::replace(&mut self.hook, hook)
    }

    /// Removes any installed tracer hook (back to NOTRACE).
    pub fn clear_hook(&mut self) {
        self.hook = Box::new(NoTrace);
    }

    /// Spawns a task that becomes ready immediately.
    pub fn spawn(&mut self, name: &str, workload: Box<dyn Workload>) -> TaskId {
        self.spawn_at(name, workload, self.now)
    }

    /// Spawns a task that becomes ready at instant `start`.
    ///
    /// # Panics
    ///
    /// Panics if `start` is in the past.
    pub fn spawn_at(&mut self, name: &str, workload: Box<dyn Workload>, start: Time) -> TaskId {
        assert!(start >= self.now, "spawn_at in the past");
        let id = TaskId(self.tasks.len() as u32);
        self.tasks.push(Tcb {
            name: name.to_owned(),
            workload,
            state: TaskState::NotStarted,
            pending: None,
            debt: Dur::ZERO,
            trace_exit: None,
            exec: Dur::ZERO,
            syscalls: 0,
        });
        self.events.push(start, KEvent::Start(id));
        id
    }

    /// Terminates a task from outside its workload (the fleet layer's
    /// migration primitive: the task is extracted here and re-admitted on
    /// another node).
    ///
    /// The task's pending action is discarded and the scheduler is told it
    /// exited; a not-yet-started task never becomes ready. Pending wake or
    /// start events for it are delivered but ignored. Returns `false` if
    /// the task had already exited.
    pub fn kill(&mut self, task: TaskId) -> bool {
        let state = self.tasks[task.index()].state;
        if state == TaskState::Exited {
            return false;
        }
        let tcb = &mut self.tasks[task.index()];
        tcb.state = TaskState::Exited;
        tcb.pending = None;
        tcb.debt = Dur::ZERO;
        tcb.trace_exit = None;
        if state != TaskState::NotStarted {
            self.sched.on_exit(task, self.now);
        }
        if self.current == Some(task) {
            self.current = None;
        }
        true
    }

    /// Drops an exited task's workload closure, replacing it with a
    /// zero-sized tombstone. The kernel keeps one [`Tcb`] per spawned task
    /// forever (ids are indices); on churn-heavy fleets the retained
    /// workload boxes — RNG state, script vectors, lease wrappers — are
    /// the dominant per-dead-task cost. An exited task is never
    /// dispatched again (stray start/wake events are ignored), so the
    /// swap is unobservable. Returns `false` unless the task has exited.
    pub fn reclaim(&mut self, task: TaskId) -> bool {
        let tcb = &mut self.tasks[task.index()];
        if tcb.state != TaskState::Exited {
            return false;
        }
        tcb.workload = Box::new(Tombstone);
        tcb.pending = None;
        true
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Cumulative CPU time consumed by the task (thread time sensor).
    pub fn thread_time(&self, task: TaskId) -> Dur {
        self.tasks[task.index()].exec
    }

    /// Number of syscalls the task has issued.
    pub fn syscall_count(&self, task: TaskId) -> u64 {
        self.tasks[task.index()].syscalls
    }

    /// The task's name as given at spawn.
    pub fn task_name(&self, task: TaskId) -> &str {
        &self.tasks[task.index()].name
    }

    /// Coarse state of the task.
    pub fn task_state(&self, task: TaskId) -> TaskState {
        self.tasks[task.index()].state
    }

    /// Number of spawned tasks (exited ones included).
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Total CPU-idle time accumulated so far.
    pub fn idle_time(&self) -> Dur {
        self.idle
    }

    /// Total CPU-busy time accumulated so far.
    pub fn busy_time(&self) -> Dur {
        self.busy
    }

    /// Number of dispatches switching to a different task.
    pub fn context_switches(&self) -> u64 {
        self.ctx_switches
    }

    /// Read access to recorded metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Mutable access to recorded metrics (e.g. to clear between phases).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// Read access to the scheduling policy.
    pub fn sched(&self) -> &S {
        &self.sched
    }

    /// Mutable access to the scheduling policy (server creation, parameter
    /// changes by the supervisor, ...).
    pub fn sched_mut(&mut self) -> &mut S {
        &mut self.sched
    }

    /// Runs the simulation for `d` of virtual time.
    pub fn run_for(&mut self, d: Dur) {
        let end = self.now + d;
        self.run_until(end);
    }

    /// Runs the simulation until virtual instant `t_end`.
    ///
    /// Events due exactly at `t_end` are delivered before returning, so a
    /// caller sampling at `t_end` observes a consistent post-event state.
    ///
    /// # Panics
    ///
    /// Panics if `t_end` is in the past, or if a workload livelocks the
    /// engine with zero-length actions.
    pub fn run_until(&mut self, t_end: Time) {
        assert!(t_end >= self.now, "run_until into the past");
        loop {
            // 1. Deliver events and policy timers due now.
            let mut progressed = false;
            while let Some((t, ev)) = self.events.pop_due(self.now) {
                debug_assert!(t <= self.now);
                self.handle_event(ev);
                progressed = true;
            }
            let mut timer_burst = 0u32;
            while let Some(ts) = self.sched.next_timer(self.now) {
                if ts > self.now {
                    break;
                }
                self.sched.on_timer(self.now);
                progressed = true;
                timer_burst += 1;
                assert!(
                    timer_burst < TIMER_BURST_LIMIT,
                    "scheduler timer storm at {}",
                    self.now
                );
            }
            if progressed {
                self.zero_progress = 0;
            }
            if self.now >= t_end {
                break;
            }

            // 2. Dispatch.
            let next = self.sched.pick(self.now);
            if next != self.current {
                self.current = next;
                if let Some(t) = next {
                    self.ctx_switches += 1;
                    if self.cs_cost > Dur::ZERO {
                        self.tasks[t.index()].debt += self.cs_cost;
                    }
                }
            }

            // 3. Compute the run horizon.
            let mut horizon = t_end;
            if let Some(t) = self.events.peek_time() {
                horizon = horizon.min(t);
            }
            if let Some(t) = self.sched.next_timer(self.now) {
                horizon = horizon.min(t);
            }

            match self.current {
                Some(tid) => {
                    if self.tasks[tid.index()].pending.is_none()
                        && self.tasks[tid.index()].debt.is_zero()
                    {
                        // Need a fresh action; the task may block or exit.
                        if !self.fetch_next_action(tid) {
                            self.zero_progress = 0;
                            continue;
                        }
                    }
                    if let Some(h) = self.sched.horizon(tid, self.now) {
                        horizon = horizon.min(self.now + h);
                    }
                    let tcb = &self.tasks[tid.index()];
                    let work =
                        tcb.debt + tcb.pending.as_ref().map_or(Dur::ZERO, Pending::remaining);
                    let completes = self.now + work;
                    let run_to = horizon.min(completes);
                    let dt = run_to.saturating_since(self.now);
                    if dt > Dur::ZERO {
                        self.now = run_to;
                        self.charge_current(tid, dt);
                        self.zero_progress = 0;
                    }
                    if run_to == completes {
                        // The action finished (possibly instantaneously).
                        self.complete_action(tid);
                        self.zero_progress = 0;
                    } else if dt.is_zero() {
                        // Budget boundary hit exactly: give the policy a
                        // zero-length charge so it can throttle, then retry.
                        self.sched.charge(tid, Dur::ZERO, self.now);
                        self.bump_zero_progress();
                    }
                }
                None => {
                    if horizon > self.now {
                        self.idle += horizon - self.now;
                        self.now = horizon;
                        self.zero_progress = 0;
                    } else {
                        self.bump_zero_progress();
                    }
                }
            }
        }
    }

    fn bump_zero_progress(&mut self) {
        self.zero_progress += 1;
        assert!(
            self.zero_progress < ACTION_FETCH_LIMIT,
            "kernel livelock at {} (current {:?})",
            self.now,
            self.current
        );
    }

    fn charge_current(&mut self, tid: TaskId, dt: Dur) {
        let tcb = &mut self.tasks[tid.index()];
        let debt_burn = tcb.debt.min(dt);
        tcb.debt -= debt_burn;
        let rest = dt - debt_burn;
        if rest > Dur::ZERO {
            if let Some(p) = tcb.pending.as_mut() {
                p.consume(rest);
            }
        }
        tcb.exec += dt;
        self.busy += dt;
        self.sched.charge(tid, dt, self.now);
    }

    /// Fetches actions from the workload until one takes time or changes the
    /// task state. Returns `true` if the task is still runnable.
    fn fetch_next_action(&mut self, tid: TaskId) -> bool {
        for _ in 0..ACTION_FETCH_LIMIT {
            let action = {
                let now = self.now;
                let tcb = &mut self.tasks[tid.index()];
                let mut ctx = TaskCtx {
                    now,
                    task: tid,
                    metrics: &mut self.metrics,
                };
                tcb.workload.next(&mut ctx)
            };
            match action {
                Action::Compute(d) => {
                    if d.is_zero() {
                        continue;
                    }
                    self.tasks[tid.index()].pending = Some(Pending::Compute { remaining: d });
                    return true;
                }
                Action::Syscall { nr, kernel, block } => {
                    self.tasks[tid.index()].syscalls += 1;
                    let overhead = self.hook.on_enter(tid, nr, self.now);
                    self.tasks[tid.index()].pending = Some(Pending::Syscall {
                        nr,
                        remaining: kernel + overhead,
                        block,
                    });
                    return true;
                }
                Action::SleepUntil(t) => {
                    if t <= self.now {
                        continue;
                    }
                    self.block_task(tid, t, None);
                    return false;
                }
                Action::SleepFor(d) => {
                    if d.is_zero() {
                        continue;
                    }
                    self.block_task(tid, self.now + d, None);
                    return false;
                }
                Action::Exit => {
                    self.tasks[tid.index()].state = TaskState::Exited;
                    self.sched.on_exit(tid, self.now);
                    if self.current == Some(tid) {
                        self.current = None;
                    }
                    return false;
                }
            }
        }
        panic!(
            "workload '{}' yielded {ACTION_FETCH_LIMIT} zero-length actions at {}",
            self.tasks[tid.index()].name,
            self.now
        );
    }

    fn block_task(&mut self, tid: TaskId, wake_at: Time, trace_exit: Option<SyscallNr>) {
        debug_assert!(wake_at > self.now);
        let tcb = &mut self.tasks[tid.index()];
        tcb.state = TaskState::Blocked;
        tcb.trace_exit = trace_exit;
        self.events.push(wake_at, KEvent::Wake(tid));
        self.sched.on_block(tid, self.now);
        if self.current == Some(tid) {
            self.current = None;
        }
    }

    /// Handles the completion of the task's pending action.
    fn complete_action(&mut self, tid: TaskId) {
        let pending = self.tasks[tid.index()].pending.take();
        match pending {
            None | Some(Pending::Compute { .. }) => {
                // Next loop iteration fetches the following action.
            }
            Some(Pending::Syscall { nr, block, .. }) => {
                let wake_at = match block {
                    Blocking::None => None,
                    Blocking::For(d) if d.is_zero() => None,
                    Blocking::For(d) => Some(self.now + d),
                    Blocking::Until(t) if t <= self.now => None,
                    Blocking::Until(t) => Some(t),
                };
                match wake_at {
                    None => {
                        // Non-blocking: trace exit immediately; the return
                        // path cost becomes debt.
                        let overhead = self.hook.on_exit(tid, nr, self.now);
                        self.tasks[tid.index()].debt += overhead;
                    }
                    Some(t) => {
                        self.block_task(tid, t, Some(nr));
                    }
                }
            }
        }
    }

    fn handle_event(&mut self, ev: KEvent) {
        match ev {
            KEvent::Start(tid) => {
                let tcb = &mut self.tasks[tid.index()];
                if tcb.state == TaskState::Exited {
                    // Killed before its start instant; ignore.
                    return;
                }
                debug_assert_eq!(tcb.state, TaskState::NotStarted, "double start of {tid}");
                tcb.state = TaskState::Ready;
                self.sched.on_ready(tid, self.now);
            }
            KEvent::Wake(tid) => {
                let state = self.tasks[tid.index()].state;
                if state != TaskState::Blocked {
                    // Spurious wake after exit; ignore.
                    return;
                }
                if let Some(nr) = self.tasks[tid.index()].trace_exit.take() {
                    let overhead = self.hook.on_exit(tid, nr, self.now);
                    self.tasks[tid.index()].debt += overhead;
                }
                let wake_ov = self.hook.on_wake(tid, self.now);
                self.tasks[tid.index()].debt += wake_ov;
                self.tasks[tid.index()].state = TaskState::Ready;
                self.sched.on_ready(tid, self.now);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::RoundRobin;
    use crate::task::{FnWorkload, Script};

    fn rr() -> RoundRobin {
        RoundRobin::new(Dur::ms(4))
    }

    fn t(ms: u64) -> Time {
        Time::ZERO + Dur::ms(ms)
    }

    #[test]
    fn single_task_computes_and_exits() {
        let mut k = Kernel::new(rr());
        let id = k.spawn(
            "solo",
            Box::new(Script::once(vec![
                Action::Compute(Dur::ms(3)),
                Action::Exit,
            ])),
        );
        k.run_until(t(10));
        assert_eq!(k.thread_time(id), Dur::ms(3));
        assert_eq!(k.task_state(id), TaskState::Exited);
        assert_eq!(k.idle_time(), Dur::ms(7));
        assert_eq!(k.busy_time(), Dur::ms(3));
    }

    #[test]
    fn two_tasks_share_cpu_fairly() {
        let mut k = Kernel::new(rr());
        let a = k.spawn(
            "a",
            Box::new(Script::once(vec![
                Action::Compute(Dur::ms(20)),
                Action::Exit,
            ])),
        );
        let b = k.spawn(
            "b",
            Box::new(Script::once(vec![
                Action::Compute(Dur::ms(20)),
                Action::Exit,
            ])),
        );
        k.run_until(t(20));
        // Both got roughly half the CPU so far.
        assert_eq!(k.thread_time(a) + k.thread_time(b), Dur::ms(20));
        assert!(k.thread_time(a) >= Dur::ms(8) && k.thread_time(a) <= Dur::ms(12));
        k.run_until(t(50));
        assert_eq!(k.task_state(a), TaskState::Exited);
        assert_eq!(k.task_state(b), TaskState::Exited);
        assert_eq!(k.thread_time(a), Dur::ms(20));
        assert_eq!(k.thread_time(b), Dur::ms(20));
    }

    #[test]
    fn sleep_wakes_on_time() {
        let mut k = Kernel::new(rr());
        let id = k.spawn(
            "sleeper",
            Box::new(Script::once(vec![
                Action::Compute(Dur::ms(1)),
                Action::SleepFor(Dur::ms(5)),
                Action::Compute(Dur::ms(1)),
                Action::Exit,
            ])),
        );
        k.run_until(t(3));
        assert_eq!(k.task_state(id), TaskState::Blocked);
        assert_eq!(k.thread_time(id), Dur::ms(1));
        k.run_until(t(10));
        assert_eq!(k.task_state(id), TaskState::Exited);
        assert_eq!(k.thread_time(id), Dur::ms(2));
        // Finished at 1ms compute + 5ms sleep + 1ms compute = 7ms.
        assert_eq!(k.idle_time(), Dur::ms(8));
    }

    #[test]
    fn periodic_task_marks_jobs() {
        let mut k = Kernel::new(rr());
        // Period 10ms, C=2ms, marks "job" at each completion.
        let period = Dur::ms(10);
        let mut job = 0u64;
        let wl = FnWorkload(move |ctx: &mut TaskCtx<'_>| {
            // Each job: compute then sleep to the next multiple of the period.
            let phase = ctx.now.as_ns() % period.as_ns();
            if phase != 0 && job > 0 {
                // End of job body: mark and sleep until next release.
                ctx.metrics.mark("job", ctx.now);
                let next = Time::from_ns(ctx.now.as_ns() - phase + period.as_ns());
                return Action::SleepUntil(next);
            }
            job += 1;
            Action::Compute(Dur::ms(2))
        });
        k.spawn("periodic", Box::new(wl));
        k.run_until(t(95));
        let marks = k.metrics().marks("job");
        assert_eq!(marks.len(), 10);
        // Jobs complete 2ms after each release.
        assert_eq!(marks[0], t(2));
        assert_eq!(marks[1], t(12));
        let ift = k.metrics().inter_mark_times_ms("job");
        assert!(ift.iter().all(|&x| (x - 10.0).abs() < 1e-9));
    }

    struct CountingHook {
        enters: u64,
        exits: u64,
        overhead: Dur,
    }

    impl SyscallHook for CountingHook {
        fn on_enter(&mut self, _t: TaskId, _nr: SyscallNr, _now: Time) -> Dur {
            self.enters += 1;
            self.overhead
        }
        fn on_exit(&mut self, _t: TaskId, _nr: SyscallNr, _now: Time) -> Dur {
            self.exits += 1;
            self.overhead
        }
    }

    #[test]
    fn syscall_costs_and_counts() {
        let mut k = Kernel::new(rr());
        let id = k.spawn(
            "caller",
            Box::new(Script::once(vec![
                Action::Syscall {
                    nr: SyscallNr::Ioctl,
                    kernel: Dur::us(10),
                    block: Blocking::None,
                },
                Action::Syscall {
                    nr: SyscallNr::Read,
                    kernel: Dur::us(5),
                    block: Blocking::None,
                },
                Action::Exit,
            ])),
        );
        k.run_until(t(5));
        assert_eq!(k.syscall_count(id), 2);
        assert_eq!(k.thread_time(id), Dur::us(15));
    }

    #[test]
    fn hook_overhead_is_charged() {
        let mut k = Kernel::new(rr());
        k.install_hook(Box::new(CountingHook {
            enters: 0,
            exits: 0,
            overhead: Dur::us(2),
        }));
        let id = k.spawn(
            "traced",
            Box::new(Script::once(vec![
                Action::Syscall {
                    nr: SyscallNr::Write,
                    kernel: Dur::us(10),
                    block: Blocking::None,
                },
                Action::Exit,
            ])),
        );
        k.run_until(t(5));
        // 10us body + 2us enter overhead + 2us exit overhead.
        assert_eq!(k.thread_time(id), Dur::us(14));
    }

    #[test]
    fn blocking_syscall_blocks_then_resumes() {
        let mut k = Kernel::new(rr());
        let id = k.spawn(
            "io",
            Box::new(Script::once(vec![
                Action::Syscall {
                    nr: SyscallNr::Read,
                    kernel: Dur::us(10),
                    block: Blocking::For(Dur::ms(5)),
                },
                Action::Compute(Dur::ms(1)),
                Action::Exit,
            ])),
        );
        k.run_until(t(2));
        assert_eq!(k.task_state(id), TaskState::Blocked);
        k.run_until(t(20));
        assert_eq!(k.task_state(id), TaskState::Exited);
        // CPU: 10us syscall body + 1ms compute; blocked time not charged.
        assert_eq!(k.thread_time(id), Dur::us(10) + Dur::ms(1));
    }

    #[test]
    fn blocking_until_past_does_not_block() {
        let mut k = Kernel::new(rr());
        let id = k.spawn(
            "nb",
            Box::new(Script::once(vec![
                Action::Compute(Dur::ms(1)),
                Action::Syscall {
                    nr: SyscallNr::ClockNanosleep,
                    kernel: Dur::us(1),
                    block: Blocking::Until(Time::ZERO),
                },
                Action::Compute(Dur::ms(1)),
                Action::Exit,
            ])),
        );
        k.run_until(t(10));
        assert_eq!(k.task_state(id), TaskState::Exited);
        assert_eq!(k.thread_time(id), Dur::ms(2) + Dur::us(1));
    }

    #[test]
    fn zero_length_actions_are_skipped() {
        let mut k = Kernel::new(rr());
        let id = k.spawn(
            "zeros",
            Box::new(Script::once(vec![
                Action::Compute(Dur::ZERO),
                Action::Compute(Dur::ZERO),
                Action::Compute(Dur::ms(1)),
                Action::Exit,
            ])),
        );
        k.run_until(t(5));
        assert_eq!(k.task_state(id), TaskState::Exited);
        assert_eq!(k.thread_time(id), Dur::ms(1));
    }

    #[test]
    fn context_switch_cost_inflates_exec() {
        let mut k = Kernel::new(rr());
        k.set_context_switch_cost(Dur::us(10));
        let id = k.spawn(
            "only",
            Box::new(Script::once(vec![
                Action::Compute(Dur::ms(1)),
                Action::Exit,
            ])),
        );
        k.run_until(t(5));
        // One dispatch: 10us switch cost + 1ms work.
        assert_eq!(k.thread_time(id), Dur::ms(1) + Dur::us(10));
        assert_eq!(k.context_switches(), 1);
    }

    #[test]
    fn spawn_at_defers_start() {
        let mut k = Kernel::new(rr());
        let id = k.spawn_at(
            "late",
            Box::new(Script::once(vec![
                Action::Compute(Dur::ms(1)),
                Action::Exit,
            ])),
            t(10),
        );
        k.run_until(t(5));
        assert_eq!(k.task_state(id), TaskState::NotStarted);
        assert_eq!(k.thread_time(id), Dur::ZERO);
        k.run_until(t(20));
        assert_eq!(k.task_state(id), TaskState::Exited);
        assert_eq!(k.thread_time(id), Dur::ms(1));
    }

    #[test]
    fn kill_stops_a_running_task() {
        let mut k = Kernel::new(rr());
        let id = k.spawn(
            "victim",
            Box::new(Script::once(vec![
                Action::Compute(Dur::ms(100)),
                Action::Exit,
            ])),
        );
        k.run_until(t(5));
        assert_eq!(k.task_state(id), TaskState::Ready);
        assert!(k.kill(id));
        assert_eq!(k.task_state(id), TaskState::Exited);
        // No further CPU is consumed after the kill.
        let exec = k.thread_time(id);
        k.run_until(t(50));
        assert_eq!(k.thread_time(id), exec);
        assert_eq!(k.idle_time(), Dur::ms(45));
        // Killing twice reports the task was already gone.
        assert!(!k.kill(id));
    }

    #[test]
    fn kill_blocked_and_not_started_tasks_is_safe() {
        let mut k = Kernel::new(rr());
        let blocked = k.spawn(
            "sleeper",
            Box::new(Script::once(vec![
                Action::SleepFor(Dur::ms(20)),
                Action::Compute(Dur::ms(1)),
                Action::Exit,
            ])),
        );
        let unborn = k.spawn_at(
            "late",
            Box::new(Script::once(vec![
                Action::Compute(Dur::ms(1)),
                Action::Exit,
            ])),
            t(30),
        );
        k.run_until(t(5));
        assert_eq!(k.task_state(blocked), TaskState::Blocked);
        assert!(k.kill(blocked));
        assert!(k.kill(unborn));
        // Their wake/start events fire later and must be ignored.
        k.run_until(t(60));
        assert_eq!(k.task_state(blocked), TaskState::Exited);
        assert_eq!(k.task_state(unborn), TaskState::Exited);
        assert_eq!(k.thread_time(blocked), Dur::ZERO);
        assert_eq!(k.thread_time(unborn), Dur::ZERO);
    }

    #[test]
    fn reclaim_only_touches_exited_tasks_and_keeps_sensors() {
        let mut k: Kernel<RoundRobin> = Kernel::new(rr());
        let done = k.spawn(
            "done",
            Box::new(Script::once(vec![
                Action::Compute(Dur::ms(3)),
                Action::Exit,
            ])),
        );
        let live = k.spawn(
            "live",
            Box::new(Script::once(vec![
                Action::Compute(Dur::ms(50)),
                Action::Exit,
            ])),
        );
        k.run_until(t(10));
        assert_eq!(k.task_state(done), TaskState::Exited);
        assert!(!k.reclaim(live), "running tasks must not be reclaimed");
        assert!(k.reclaim(done));
        // Sensors survive the workload drop, and the rest of the run is
        // unaffected.
        assert_eq!(k.thread_time(done), Dur::ms(3));
        assert_eq!(k.task_name(done), "done");
        k.run_until(t(100));
        assert_eq!(k.task_state(live), TaskState::Exited);
        assert_eq!(k.thread_time(live), Dur::ms(50));
    }

    #[test]
    fn run_until_now_is_a_no_op() {
        let mut k: Kernel<RoundRobin> = Kernel::new(rr());
        k.run_until(Time::ZERO);
        assert_eq!(k.now(), Time::ZERO);
    }

    #[test]
    fn idle_kernel_advances_to_end() {
        let mut k: Kernel<RoundRobin> = Kernel::new(rr());
        k.run_until(t(100));
        assert_eq!(k.now(), t(100));
        assert_eq!(k.idle_time(), Dur::ms(100));
    }
}
