//! Descriptive statistics used by experiments and tests.
//!
//! Everything operates on plain `&[f64]` so values can come from durations,
//! frequencies, or any other measurement. Sample (n−1) variance is used,
//! matching how the paper reports standard deviations over repeated runs.

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n−1 denominator); `0.0` for fewer than two
/// samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let ss: f64 = xs.iter().map(|x| (x - m).powi(2)).sum();
    (ss / (xs.len() - 1) as f64).sqrt()
}

/// One-pass (Welford) mean and sample standard deviation of an iterator:
/// the allocation-free companion of [`mean`]/[`std_dev`] for borrowing
/// sources like `Metrics::values_iter`. Returns `(0.0, 0.0)` for an empty
/// iterator and `(mean, 0.0)` for a single sample.
pub fn mean_std_of(xs: impl Iterator<Item = f64>) -> (f64, f64) {
    let (mut n, mut m, mut m2) = (0u64, 0.0f64, 0.0f64);
    for x in xs {
        n += 1;
        let d = x - m;
        m += d / n as f64;
        m2 += d * (x - m);
    }
    match n {
        0 => (0.0, 0.0),
        1 => (m, 0.0),
        _ => (m, (m2 / (n - 1) as f64).sqrt()),
    }
}

/// Minimum; `NaN` for an empty slice.
pub fn min(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NAN, f64::min)
}

/// Maximum; `NaN` for an empty slice.
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NAN, f64::max)
}

/// The `p`-quantile (0 ≤ p ≤ 1) by linear interpolation on sorted data.
///
/// # Panics
///
/// Panics if `xs` is empty or `p` is outside `[0, 1]`.
pub fn quantile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty slice");
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    quantile_sorted(&v, p)
}

/// The `p`-quantile of already-sorted data (the allocation-free core of
/// [`quantile`]; callers extracting many quantiles should sort once and
/// use this).
///
/// # Panics
///
/// Panics if `sorted` is empty or `p` is outside `[0, 1]`.
pub fn quantile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&p), "quantile p={p}");
    let idx = p * (sorted.len() - 1) as f64;
    let lo = idx.floor() as usize;
    let hi = idx.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = idx - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Five-number summary plus mean/std, the usual row of an experiment table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Minimum value.
    pub min: f64,
    /// Median (0.5-quantile).
    pub median: f64,
    /// Maximum value.
    pub max: f64,
}

impl Summary {
    /// Computes the summary of `xs`.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty.
    pub fn of(xs: &[f64]) -> Summary {
        assert!(!xs.is_empty(), "Summary of empty slice");
        Summary {
            n: xs.len(),
            mean: mean(xs),
            std_dev: std_dev(xs),
            min: min(xs),
            median: quantile(xs, 0.5),
            max: max(xs),
        }
    }
}

/// Fixed-width histogram over `[lo, hi)` with `bins` buckets.
///
/// Returns `(bin_center, count)` pairs. Values outside the range are clamped
/// into the first/last bin.
///
/// # Panics
///
/// Panics if `bins == 0` or `lo >= hi`.
pub fn histogram(xs: &[f64], lo: f64, hi: f64, bins: usize) -> Vec<(f64, u64)> {
    assert!(bins > 0 && lo < hi, "histogram({lo}, {hi}, {bins})");
    let width = (hi - lo) / bins as f64;
    let mut counts = vec![0u64; bins];
    for &x in xs {
        let mut b = ((x - lo) / width).floor() as i64;
        if b < 0 {
            b = 0;
        }
        if b >= bins as i64 {
            b = bins as i64 - 1;
        }
        counts[b as usize] += 1;
    }
    counts
        .into_iter()
        .enumerate()
        .map(|(i, c)| (lo + (i as f64 + 0.5) * width, c))
        .collect()
}

/// Empirical CDF: sorted `(value, F(value))` points with F in `(0, 1]`.
pub fn cdf(xs: &[f64]) -> Vec<(f64, f64)> {
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in cdf input"));
    let n = v.len() as f64;
    v.into_iter()
        .enumerate()
        .map(|(i, x)| (x, (i + 1) as f64 / n))
        .collect()
}

/// Probability mass function over discrete bins of width `bin`: returns
/// `(bin_center, probability)` for non-empty bins, sorted by value.
///
/// This is how the paper presents detected-frequency distributions (Fig. 11).
///
/// # Panics
///
/// Panics if `bin` is not strictly positive or `xs` is empty.
pub fn pmf(xs: &[f64], bin: f64) -> Vec<(f64, f64)> {
    assert!(bin > 0.0, "pmf bin={bin}");
    assert!(!xs.is_empty(), "pmf of empty slice");
    use std::collections::BTreeMap;
    let mut counts: BTreeMap<i64, u64> = BTreeMap::new();
    for &x in xs {
        let k = (x / bin).round() as i64;
        *counts.entry(k).or_insert(0) += 1;
    }
    let n = xs.len() as f64;
    counts
        .into_iter()
        .map(|(k, c)| (k as f64 * bin, c as f64 / n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        // Sample std of this classic set is ~2.138.
        assert!((std_dev(&xs) - 2.13809).abs() < 1e-4);
    }

    #[test]
    fn empty_slices() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
        assert!(min(&[]).is_nan());
        assert!(max(&[]).is_nan());
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn summary_consistent() {
        let xs = [3.0, 1.0, 2.0];
        let s = Summary::of(&xs);
        assert_eq!(s.n, 3);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.median, 2.0);
        assert!((s.mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_counts_and_clamps() {
        let xs = [0.5, 1.5, 1.6, 9.9, -5.0, 50.0];
        let h = histogram(&xs, 0.0, 10.0, 10);
        assert_eq!(h.len(), 10);
        let total: u64 = h.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, xs.len() as u64);
        assert_eq!(h[0].1, 2); // 0.5 and clamped -5.0
        assert_eq!(h[1].1, 2); // 1.5, 1.6
        assert_eq!(h[9].1, 2); // 9.9 and clamped 50.0
        assert!((h[0].0 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cdf_monotone() {
        let xs = [3.0, 1.0, 2.0, 2.0];
        let c = cdf(&xs);
        assert_eq!(c.len(), 4);
        assert_eq!(c.last().unwrap().1, 1.0);
        for w in c.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        let xs = [32.5, 32.5, 33.0, 97.5];
        let p = pmf(&xs, 0.5);
        let total: f64 = p.iter().map(|&(_, pr)| pr).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(p[0].0, 32.5);
        assert!((p[0].1 - 0.5).abs() < 1e-12);
    }
}
