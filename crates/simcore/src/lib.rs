//! # selftune-simcore
//!
//! Discrete-event CPU/kernel simulation substrate for the `selftune`
//! reproduction of *"Self-tuning Schedulers for Legacy Real-Time
//! Applications"* (Cucinotta, Checconi, Abeni, Palopoli — EuroSys 2010).
//!
//! The paper's machinery runs inside a patched Linux kernel; this crate is
//! the stand-in substrate: a deterministic single-CPU simulator with
//! nanosecond virtual time, blocking system calls, pluggable schedulers and
//! a syscall-tracing hook. Everything the paper's components observe —
//! syscall timestamps, consumed CPU time, scheduler state — is produced by
//! the [`kernel::Kernel`] engine.
//!
//! ## Layout
//!
//! * [`time`] — `Time`/`Dur` nanosecond newtypes.
//! * [`rng`] — sealed xoshiro256++ RNG with distribution helpers.
//! * [`event`] — deterministic time-ordered event queue.
//! * [`task`] — the legacy-application model: workloads yielding actions.
//! * [`syscall`] — system-call identifiers and default in-kernel costs.
//! * [`scheduler`] — the policy trait + a round-robin reference policy.
//! * [`kernel`] — the discrete-event engine.
//! * [`metrics`] — measurement sinks (marks, series, counters) + CSV.
//! * [`stats`] — descriptive statistics for experiment tables.

pub mod event;
pub mod kernel;
pub mod metrics;
pub mod rng;
pub mod scheduler;
pub mod stats;
pub mod syscall;
pub mod task;
pub mod time;

pub use kernel::{Kernel, NoTrace, SyscallHook, TaskState};
pub use metrics::{LazyKey, MetricKey, Metrics};
pub use rng::Rng;
pub use scheduler::{RoundRobin, Scheduler};
pub use syscall::SyscallNr;
pub use task::{Action, Blocking, Script, TaskCtx, TaskId, Workload};
pub use time::{Dur, Time};
