//! Virtual time for the discrete-event simulation.
//!
//! The simulator measures time in integer nanoseconds since simulation start.
//! Two newtypes keep instants and durations apart:
//!
//! * [`Time`] — an absolute instant on the virtual clock.
//! * [`Dur`] — a span between two instants.
//!
//! Both are thin wrappers over `u64`, so all scheduler state advances without
//! floating-point drift. Conversions to `f64` seconds/milliseconds are
//! provided for statistics and control-law computations only.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A duration on the virtual clock, in nanoseconds.
///
/// Arithmetic is checked: subtraction panics on underflow (use
/// [`Dur::saturating_sub`] when clamping to zero is intended) and addition
/// panics on overflow. With `u64` nanoseconds the representable range is
/// ~584 years, far beyond any simulation horizon used here.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug)]
pub struct Dur(u64);

impl Dur {
    /// The zero-length duration.
    pub const ZERO: Dur = Dur(0);
    /// The maximum representable duration.
    pub const MAX: Dur = Dur(u64::MAX);

    /// Creates a duration of `n` nanoseconds.
    pub const fn ns(n: u64) -> Dur {
        Dur(n)
    }

    /// Creates a duration of `n` microseconds.
    pub const fn us(n: u64) -> Dur {
        Dur(n * 1_000)
    }

    /// Creates a duration of `n` milliseconds.
    pub const fn ms(n: u64) -> Dur {
        Dur(n * 1_000_000)
    }

    /// Creates a duration of `n` seconds.
    pub const fn secs(n: u64) -> Dur {
        Dur(n * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, saturating at the bounds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Dur {
        assert!(s.is_finite() && s >= 0.0, "Dur::from_secs_f64({s})");
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            Dur::MAX
        } else {
            Dur(ns.round() as u64)
        }
    }

    /// Creates a duration from fractional milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `ms` is negative or not finite.
    pub fn from_ms_f64(ms: f64) -> Dur {
        Dur::from_secs_f64(ms * 1e-3)
    }

    /// Creates a duration from fractional microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `us` is negative or not finite.
    pub fn from_us_f64(us: f64) -> Dur {
        Dur::from_secs_f64(us * 1e-6)
    }

    /// Returns the duration in whole nanoseconds.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Returns the duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// Returns the duration in fractional milliseconds.
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 * 1e-6
    }

    /// Returns the duration in fractional microseconds.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 * 1e-3
    }

    /// Returns `true` if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Subtraction clamped at zero.
    pub const fn saturating_sub(self, rhs: Dur) -> Dur {
        Dur(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction; `None` on underflow.
    pub const fn checked_sub(self, rhs: Dur) -> Option<Dur> {
        match self.0.checked_sub(rhs.0) {
            Some(v) => Some(Dur(v)),
            None => None,
        }
    }

    /// Addition clamped at [`Dur::MAX`].
    pub const fn saturating_add(self, rhs: Dur) -> Dur {
        Dur(self.0.saturating_add(rhs.0))
    }

    /// Scales the duration by a non-negative factor, rounding to nearest.
    ///
    /// # Panics
    ///
    /// Panics if `x` is negative or not finite.
    pub fn mul_f64(self, x: f64) -> Dur {
        assert!(x.is_finite() && x >= 0.0, "Dur::mul_f64({x})");
        let ns = self.0 as f64 * x;
        if ns >= u64::MAX as f64 {
            Dur::MAX
        } else {
            Dur(ns.round() as u64)
        }
    }

    /// Returns `self / other` as a floating-point ratio.
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn ratio(self, other: Dur) -> f64 {
        assert!(!other.is_zero(), "Dur::ratio division by zero");
        self.0 as f64 / other.0 as f64
    }

    /// Integer division returning how many whole `other` fit in `self`.
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn div_floor(self, other: Dur) -> u64 {
        assert!(!other.is_zero(), "Dur::div_floor division by zero");
        self.0 / other.0
    }

    /// Remainder of `self` modulo `other`.
    ///
    /// Named `rem_of` to avoid confusion with `std::ops::Rem::rem` (which
    /// `Dur` deliberately does not implement — use explicit division
    /// helpers instead).
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn rem_of(self, other: Dur) -> Dur {
        assert!(!other.is_zero(), "Dur::rem division by zero");
        Dur(self.0 % other.0)
    }
}

impl Add for Dur {
    type Output = Dur;
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0.checked_add(rhs.0).expect("Dur overflow in add"))
    }
}

impl AddAssign for Dur {
    fn add_assign(&mut self, rhs: Dur) {
        *self = *self + rhs;
    }
}

impl Sub for Dur {
    type Output = Dur;
    fn sub(self, rhs: Dur) -> Dur {
        Dur(self.0.checked_sub(rhs.0).expect("Dur underflow in sub"))
    }
}

impl SubAssign for Dur {
    fn sub_assign(&mut self, rhs: Dur) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Dur {
    type Output = Dur;
    fn mul(self, rhs: u64) -> Dur {
        Dur(self.0.checked_mul(rhs).expect("Dur overflow in mul"))
    }
}

impl Div<u64> for Dur {
    type Output = Dur;
    fn div(self, rhs: u64) -> Dur {
        Dur(self.0 / rhs)
    }
}

impl Sum for Dur {
    fn sum<I: Iterator<Item = Dur>>(iter: I) -> Dur {
        iter.fold(Dur::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns == 0 {
            write!(f, "0s")
        } else if ns < 1_000 {
            write!(f, "{ns}ns")
        } else if ns < 1_000_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else if ns < 1_000_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        }
    }
}

/// An absolute instant on the virtual clock (nanoseconds since simulation
/// start).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug)]
pub struct Time(u64);

impl Time {
    /// The simulation start instant.
    pub const ZERO: Time = Time(0);
    /// A far-future sentinel. Kept below `u64::MAX` so that adding typical
    /// durations to it cannot overflow.
    pub const FAR: Time = Time(u64::MAX / 4);

    /// Creates an instant `n` nanoseconds after simulation start.
    pub const fn from_ns(n: u64) -> Time {
        Time(n)
    }

    /// Returns nanoseconds since simulation start.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Returns seconds since simulation start, as `f64`.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// Returns milliseconds since simulation start, as `f64`.
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 * 1e-6
    }

    /// Duration elapsed since `earlier`, clamped at zero if `earlier` is in
    /// the future.
    pub const fn saturating_since(self, earlier: Time) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn since(self, earlier: Time) -> Dur {
        Dur(self
            .0
            .checked_sub(earlier.0)
            .expect("Time::since: earlier instant is in the future"))
    }

    /// Returns the earlier of two instants.
    pub fn min(self, other: Time) -> Time {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the later of two instants.
    pub fn max(self, other: Time) -> Time {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Add<Dur> for Time {
    type Output = Time;
    fn add(self, rhs: Dur) -> Time {
        Time(self.0.checked_add(rhs.as_ns()).expect("Time overflow"))
    }
}

impl AddAssign<Dur> for Time {
    fn add_assign(&mut self, rhs: Dur) {
        *self = *self + rhs;
    }
}

impl Sub<Dur> for Time {
    type Output = Time;
    fn sub(self, rhs: Dur) -> Time {
        Time(
            self.0
                .checked_sub(rhs.as_ns())
                .expect("Time underflow in sub"),
        )
    }
}

impl Sub<Time> for Time {
    type Output = Dur;
    fn sub(self, rhs: Time) -> Dur {
        self.since(rhs)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", Dur(self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(Dur::us(3).as_ns(), 3_000);
        assert_eq!(Dur::ms(3).as_ns(), 3_000_000);
        assert_eq!(Dur::secs(3).as_ns(), 3_000_000_000);
        assert_eq!(Dur::from_ms_f64(1.5).as_ns(), 1_500_000);
        assert_eq!(Dur::from_us_f64(2.5).as_ns(), 2_500);
    }

    #[test]
    fn float_round_trips() {
        let d = Dur::from_secs_f64(0.123_456_789);
        assert!((d.as_secs_f64() - 0.123_456_789).abs() < 1e-9);
        assert!((Dur::ms(20).as_ms_f64() - 20.0).abs() < 1e-12);
        assert!((Dur::us(7).as_us_f64() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(Dur::ms(5) + Dur::ms(7), Dur::ms(12));
        assert_eq!(Dur::ms(7) - Dur::ms(5), Dur::ms(2));
        assert_eq!(Dur::ms(5) * 4, Dur::ms(20));
        assert_eq!(Dur::ms(20) / 4, Dur::ms(5));
        assert_eq!(Dur::ms(3).saturating_sub(Dur::ms(5)), Dur::ZERO);
        assert_eq!(Dur::ms(3).checked_sub(Dur::ms(5)), None);
        assert_eq!(Dur::ms(100).div_floor(Dur::ms(30)), 3);
        assert_eq!(Dur::ms(100).rem_of(Dur::ms(30)), Dur::ms(10));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = Dur::ms(1) - Dur::ms(2);
    }

    #[test]
    fn mul_f64_rounds() {
        assert_eq!(Dur::ms(10).mul_f64(1.5), Dur::ms(15));
        assert_eq!(Dur::ns(3).mul_f64(0.5), Dur::ns(2)); // round-to-nearest
        assert_eq!(Dur::ms(10).mul_f64(0.0), Dur::ZERO);
    }

    #[test]
    fn ratio() {
        assert!((Dur::ms(20).ratio(Dur::ms(100)) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn time_ops() {
        let t0 = Time::ZERO;
        let t1 = t0 + Dur::ms(10);
        assert_eq!(t1.as_ns(), 10_000_000);
        assert_eq!(t1 - t0, Dur::ms(10));
        assert_eq!(t1.saturating_since(t1 + Dur::ms(1)), Dur::ZERO);
        assert_eq!(t0.min(t1), t0);
        assert_eq!(t0.max(t1), t1);
    }

    #[test]
    fn display_scales() {
        assert_eq!(Dur::ns(5).to_string(), "5ns");
        assert_eq!(Dur::us(5).to_string(), "5.000us");
        assert_eq!(Dur::ms(5).to_string(), "5.000ms");
        assert_eq!(Dur::secs(5).to_string(), "5.000s");
        assert_eq!(Dur::ZERO.to_string(), "0s");
    }

    #[test]
    fn sum_iterator() {
        let total: Dur = [Dur::ms(1), Dur::ms(2), Dur::ms(3)].into_iter().sum();
        assert_eq!(total, Dur::ms(6));
    }

    #[test]
    fn far_future_is_safe_to_add_to() {
        let _ = Time::FAR + Dur::secs(1_000_000);
    }
}
