//! Application-level and kernel-level measurement sinks.
//!
//! Workloads mark instants (`frame shown`), record valued samples
//! (`decode time`), and bump counters. Experiments read the recorded data
//! back to compute the paper's QoS metrics (inter-frame times, CDFs, ...).

use crate::time::Time;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::Path;

/// In-memory measurement store.
#[derive(Debug, Default)]
pub struct Metrics {
    marks: BTreeMap<String, Vec<Time>>,
    series: BTreeMap<String, Vec<(Time, f64)>>,
    counters: BTreeMap<String, u64>,
}

impl Metrics {
    /// Creates an empty store.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Records that the named event happened at `now`.
    pub fn mark(&mut self, name: &str, now: Time) {
        self.marks.entry(name.to_owned()).or_default().push(now);
    }

    /// Appends a `(now, value)` sample to the named series.
    pub fn record(&mut self, name: &str, now: Time, value: f64) {
        self.series
            .entry(name.to_owned())
            .or_default()
            .push((now, value));
    }

    /// Increments the named counter by `n`.
    pub fn add(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += n;
    }

    /// All instants at which `name` was marked.
    pub fn marks(&self, name: &str) -> &[Time] {
        self.marks.get(name).map_or(&[], |v| v)
    }

    /// All `(time, value)` samples of the named series.
    pub fn series(&self, name: &str) -> &[(Time, f64)] {
        self.series.get(name).map_or(&[], |v| v)
    }

    /// Only the values of the named series.
    pub fn values(&self, name: &str) -> Vec<f64> {
        self.series(name).iter().map(|&(_, v)| v).collect()
    }

    /// Current value of the named counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Consecutive gaps between marks of `name`, in milliseconds.
    ///
    /// This is the paper's inter-frame-time metric when `name` marks frame
    /// display instants.
    pub fn inter_mark_times_ms(&self, name: &str) -> Vec<f64> {
        self.marks(name)
            .windows(2)
            .map(|w| (w[1] - w[0]).as_ms_f64())
            .collect()
    }

    /// Names of all recorded mark streams.
    pub fn mark_names(&self) -> impl Iterator<Item = &str> {
        self.marks.keys().map(String::as_str)
    }

    /// Names of all recorded series.
    pub fn series_names(&self) -> impl Iterator<Item = &str> {
        self.series.keys().map(String::as_str)
    }

    /// Clears all recorded data.
    pub fn clear(&mut self) {
        self.marks.clear();
        self.series.clear();
        self.counters.clear();
    }
}

/// Writes rows of string-convertible cells as a CSV file.
///
/// Minimal by design: experiment outputs are plain numeric tables, so no
/// quoting/escaping is needed (and commas in cells are rejected).
///
/// # Errors
///
/// Returns any I/O error from creating or writing the file, or an
/// `InvalidInput` error if a cell contains a comma or newline.
pub fn write_csv<P: AsRef<Path>>(
    path: P,
    header: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    let check = |cell: &str| -> std::io::Result<()> {
        if cell.contains(',') || cell.contains('\n') {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("CSV cell contains separator: {cell:?}"),
            ));
        }
        Ok(())
    };
    for h in header {
        check(h)?;
    }
    writeln!(f, "{}", header.join(","))?;
    for row in rows {
        for cell in row {
            check(cell)?;
        }
        writeln!(f, "{}", row.join(","))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Dur;

    #[test]
    fn marks_accumulate_in_order() {
        let mut m = Metrics::new();
        m.mark("frame", Time::ZERO + Dur::ms(40));
        m.mark("frame", Time::ZERO + Dur::ms(80));
        m.mark("frame", Time::ZERO + Dur::ms(121));
        assert_eq!(m.marks("frame").len(), 3);
        let ift = m.inter_mark_times_ms("frame");
        assert_eq!(ift.len(), 2);
        assert!((ift[0] - 40.0).abs() < 1e-9);
        assert!((ift[1] - 41.0).abs() < 1e-9);
    }

    #[test]
    fn missing_names_are_empty() {
        let m = Metrics::new();
        assert!(m.marks("nope").is_empty());
        assert!(m.series("nope").is_empty());
        assert_eq!(m.counter("nope"), 0);
    }

    #[test]
    fn series_and_counters() {
        let mut m = Metrics::new();
        m.record("bw", Time::ZERO, 0.2);
        m.record("bw", Time::ZERO + Dur::ms(1), 0.3);
        m.add("ctx", 2);
        m.add("ctx", 3);
        assert_eq!(m.values("bw"), vec![0.2, 0.3]);
        assert_eq!(m.counter("ctx"), 5);
    }

    #[test]
    fn clear_resets() {
        let mut m = Metrics::new();
        m.mark("a", Time::ZERO);
        m.record("b", Time::ZERO, 1.0);
        m.add("c", 1);
        m.clear();
        assert!(m.marks("a").is_empty());
        assert!(m.series("b").is_empty());
        assert_eq!(m.counter("c"), 0);
    }

    #[test]
    fn csv_round_trip() {
        let dir = std::env::temp_dir().join("selftune-csv-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.csv");
        write_csv(
            &path,
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "a,b\n1,2\n3,4\n");
    }

    #[test]
    fn csv_rejects_separators() {
        let dir = std::env::temp_dir().join("selftune-csv-test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.csv");
        let err = write_csv(&path, &["a,b"], &[]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }
}
