//! Application-level and kernel-level measurement sinks.
//!
//! Workloads mark instants (`frame shown`), record valued samples
//! (`decode time`), and bump counters. Experiments read the recorded data
//! back to compute the paper's QoS metrics (inter-frame times, CDFs, ...).
//!
//! # Key interning
//!
//! Metric names are interned: the first time a name is seen it is assigned
//! a dense [`MetricKey`] (a `u32` index), and all storage is `Vec`-indexed
//! by that key. Hot paths resolve their names once — via [`Metrics::key`]
//! or a [`LazyKey`] — and then use the `*_k` fast paths (`mark_k`,
//! `record_k`, `add_k`), which cost an array index instead of a string
//! hash/compare per sample. The string-keyed API is a thin wrapper that
//! looks the name up on every call; it stays around for cold paths and
//! tests.

use crate::time::Time;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::Path;

/// An interned metric name: a dense index into the [`Metrics`] store.
///
/// Keys are only meaningful for the `Metrics` instance that issued them;
/// resolving the same name against two stores yields unrelated keys.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MetricKey(u32);

impl MetricKey {
    /// The raw index (stable for the lifetime of the issuing store).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A metric name whose [`MetricKey`] is resolved on first use and cached.
///
/// Workloads construct their key names once (`"<label>.frame"`) and call
/// [`LazyKey::get`] per sample: the first call interns the name, every
/// later call is a field read. Like `MetricKey`, a resolved `LazyKey` is
/// bound to the store it was first resolved against.
#[derive(Clone, Debug)]
pub struct LazyKey {
    name: String,
    key: Option<MetricKey>,
}

impl LazyKey {
    /// Creates an unresolved key for `name`.
    pub fn new(name: impl Into<String>) -> LazyKey {
        LazyKey {
            name: name.into(),
            key: None,
        }
    }

    /// The metric name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Resolves (once) and returns the key.
    pub fn get(&mut self, metrics: &mut Metrics) -> MetricKey {
        match self.key {
            Some(k) => k,
            None => {
                let k = metrics.key(&self.name);
                self.key = Some(k);
                k
            }
        }
    }
}

/// In-memory measurement store.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Name → key registry (sorted, so name iteration stays deterministic).
    index: BTreeMap<String, MetricKey>,
    /// Key → name (for reverse lookups and name iteration by key).
    names: Vec<String>,
    marks: Vec<Vec<Time>>,
    series: Vec<Vec<(Time, f64)>>,
    counters: Vec<u64>,
}

impl Metrics {
    /// Creates an empty store.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Interns `name`, returning its dense key (stable across the store's
    /// lifetime, including [`Metrics::clear`]).
    pub fn key(&mut self, name: &str) -> MetricKey {
        if let Some(&k) = self.index.get(name) {
            return k;
        }
        let k = MetricKey(u32::try_from(self.names.len()).expect("metric key space exhausted"));
        self.index.insert(name.to_owned(), k);
        self.names.push(name.to_owned());
        self.marks.push(Vec::new());
        self.series.push(Vec::new());
        self.counters.push(0);
        k
    }

    /// The name behind an interned key.
    ///
    /// # Panics
    ///
    /// Panics if the key was not issued by this store.
    pub fn name_of(&self, key: MetricKey) -> &str {
        &self.names[key.index()]
    }

    /// Records that the keyed event happened at `now` (fast path).
    pub fn mark_k(&mut self, key: MetricKey, now: Time) {
        self.marks[key.index()].push(now);
    }

    /// Appends a `(now, value)` sample to the keyed series (fast path).
    pub fn record_k(&mut self, key: MetricKey, now: Time, value: f64) {
        self.series[key.index()].push((now, value));
    }

    /// Increments the keyed counter by `n` (fast path).
    pub fn add_k(&mut self, key: MetricKey, n: u64) {
        self.counters[key.index()] += n;
    }

    /// Records that the named event happened at `now`.
    pub fn mark(&mut self, name: &str, now: Time) {
        let k = self.key(name);
        self.mark_k(k, now);
    }

    /// Appends a `(now, value)` sample to the named series.
    pub fn record(&mut self, name: &str, now: Time, value: f64) {
        let k = self.key(name);
        self.record_k(k, now, value);
    }

    /// Increments the named counter by `n`.
    pub fn add(&mut self, name: &str, n: u64) {
        let k = self.key(name);
        self.add_k(k, n);
    }

    /// All instants at which the keyed event was marked.
    pub fn marks_k(&self, key: MetricKey) -> &[Time] {
        &self.marks[key.index()]
    }

    /// All `(time, value)` samples of the keyed series.
    pub fn series_k(&self, key: MetricKey) -> &[(Time, f64)] {
        &self.series[key.index()]
    }

    /// Current value of the keyed counter.
    pub fn counter_k(&self, key: MetricKey) -> u64 {
        self.counters[key.index()]
    }

    /// All instants at which `name` was marked.
    pub fn marks(&self, name: &str) -> &[Time] {
        self.index
            .get(name)
            .map_or(&[], |&k| self.marks[k.index()].as_slice())
    }

    /// All `(time, value)` samples of the named series.
    pub fn series(&self, name: &str) -> &[(Time, f64)] {
        self.index
            .get(name)
            .map_or(&[], |&k| self.series[k.index()].as_slice())
    }

    /// Only the values of the named series, as a fresh vector.
    ///
    /// Allocates on every call; iterate [`Metrics::values_iter`] instead
    /// when the values are only consumed once.
    pub fn values(&self, name: &str) -> Vec<f64> {
        self.values_iter(name).collect()
    }

    /// Borrowing iterator over the values of the named series.
    pub fn values_iter(&self, name: &str) -> impl Iterator<Item = f64> + '_ {
        self.series(name).iter().map(|&(_, v)| v)
    }

    /// Current value of the named counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.index
            .get(name)
            .map_or(0, |&k| self.counters[k.index()])
    }

    /// Consecutive gaps between marks of `name`, in milliseconds.
    ///
    /// This is the paper's inter-frame-time metric when `name` marks frame
    /// display instants. Allocates; see [`Metrics::inter_mark_iter`] for
    /// the borrowing version.
    pub fn inter_mark_times_ms(&self, name: &str) -> Vec<f64> {
        self.inter_mark_iter(name).collect()
    }

    /// Borrowing iterator over consecutive mark gaps of `name`, in
    /// milliseconds.
    pub fn inter_mark_iter(&self, name: &str) -> impl Iterator<Item = f64> + '_ {
        self.marks(name)
            .windows(2)
            .map(|w| (w[1] - w[0]).as_ms_f64())
    }

    /// Names of all recorded mark streams (sorted).
    pub fn mark_names(&self) -> impl Iterator<Item = &str> {
        self.index
            .iter()
            .filter(|(_, k)| !self.marks[k.index()].is_empty())
            .map(|(name, _)| name.as_str())
    }

    /// Names of all recorded series (sorted).
    pub fn series_names(&self) -> impl Iterator<Item = &str> {
        self.index
            .iter()
            .filter(|(_, k)| !self.series[k.index()].is_empty())
            .map(|(name, _)| name.as_str())
    }

    /// Clears all recorded data. Interned keys survive (the registry is
    /// kept so cached [`MetricKey`]s stay valid); only the samples go.
    pub fn clear(&mut self) {
        for v in &mut self.marks {
            v.clear();
        }
        for v in &mut self.series {
            v.clear();
        }
        for c in &mut self.counters {
            *c = 0;
        }
    }
}

/// Writes rows of string-convertible cells as a CSV file.
///
/// Minimal by design: experiment outputs are plain numeric tables, so no
/// quoting/escaping is needed (and commas in cells are rejected).
///
/// # Errors
///
/// Returns any I/O error from creating or writing the file, or an
/// `InvalidInput` error if a cell contains a comma or newline.
pub fn write_csv<P: AsRef<Path>>(
    path: P,
    header: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    let check = |cell: &str| -> std::io::Result<()> {
        if cell.contains(',') || cell.contains('\n') {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("CSV cell contains separator: {cell:?}"),
            ));
        }
        Ok(())
    };
    for h in header {
        check(h)?;
    }
    writeln!(f, "{}", header.join(","))?;
    for row in rows {
        for cell in row {
            check(cell)?;
        }
        writeln!(f, "{}", row.join(","))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Dur;

    #[test]
    fn marks_accumulate_in_order() {
        let mut m = Metrics::new();
        m.mark("frame", Time::ZERO + Dur::ms(40));
        m.mark("frame", Time::ZERO + Dur::ms(80));
        m.mark("frame", Time::ZERO + Dur::ms(121));
        assert_eq!(m.marks("frame").len(), 3);
        let ift = m.inter_mark_times_ms("frame");
        assert_eq!(ift.len(), 2);
        assert!((ift[0] - 40.0).abs() < 1e-9);
        assert!((ift[1] - 41.0).abs() < 1e-9);
    }

    #[test]
    fn missing_names_are_empty() {
        let m = Metrics::new();
        assert!(m.marks("nope").is_empty());
        assert!(m.series("nope").is_empty());
        assert_eq!(m.counter("nope"), 0);
    }

    #[test]
    fn series_and_counters() {
        let mut m = Metrics::new();
        m.record("bw", Time::ZERO, 0.2);
        m.record("bw", Time::ZERO + Dur::ms(1), 0.3);
        m.add("ctx", 2);
        m.add("ctx", 3);
        assert_eq!(m.values("bw"), vec![0.2, 0.3]);
        assert_eq!(m.counter("ctx"), 5);
    }

    #[test]
    fn clear_resets() {
        let mut m = Metrics::new();
        m.mark("a", Time::ZERO);
        m.record("b", Time::ZERO, 1.0);
        m.add("c", 1);
        m.clear();
        assert!(m.marks("a").is_empty());
        assert!(m.series("b").is_empty());
        assert_eq!(m.counter("c"), 0);
    }

    #[test]
    fn interned_and_string_paths_agree() {
        let mut m = Metrics::new();
        let frame = m.key("frame");
        m.mark_k(frame, Time::ZERO);
        m.mark("frame", Time::ZERO + Dur::ms(40));
        assert_eq!(m.marks("frame"), m.marks_k(frame));
        assert_eq!(m.marks("frame").len(), 2);

        let bw = m.key("bw");
        m.record_k(bw, Time::ZERO, 0.5);
        m.record("bw", Time::ZERO, 0.6);
        assert_eq!(m.series("bw"), m.series_k(bw));

        let ctx = m.key("ctx");
        m.add_k(ctx, 2);
        m.add("ctx", 3);
        assert_eq!(m.counter("ctx"), 5);
        assert_eq!(m.counter_k(ctx), 5);

        // Re-interning returns the same key; names round-trip.
        assert_eq!(m.key("frame"), frame);
        assert_eq!(m.name_of(frame), "frame");
    }

    #[test]
    fn keys_survive_clear() {
        let mut m = Metrics::new();
        let k = m.key("x");
        m.mark_k(k, Time::ZERO);
        m.clear();
        assert!(m.marks_k(k).is_empty());
        m.mark_k(k, Time::ZERO + Dur::ms(1));
        assert_eq!(m.marks("x").len(), 1);
        assert_eq!(m.key("x"), k);
    }

    #[test]
    fn lazy_key_resolves_once() {
        let mut m = Metrics::new();
        let mut lk = LazyKey::new("lazy.frame");
        assert_eq!(lk.name(), "lazy.frame");
        let k1 = lk.get(&mut m);
        let k2 = lk.get(&mut m);
        assert_eq!(k1, k2);
        m.mark_k(k1, Time::ZERO);
        assert_eq!(m.marks("lazy.frame").len(), 1);
    }

    #[test]
    fn name_iterators_are_sorted_and_nonempty_only() {
        let mut m = Metrics::new();
        m.mark("b.frame", Time::ZERO);
        m.mark("a.frame", Time::ZERO);
        let _unused = m.key("z.frame"); // registered but never marked
        m.record("c.bw", Time::ZERO, 1.0);
        let marks: Vec<&str> = m.mark_names().collect();
        assert_eq!(marks, vec!["a.frame", "b.frame"]);
        let series: Vec<&str> = m.series_names().collect();
        assert_eq!(series, vec!["c.bw"]);
    }

    #[test]
    fn values_iter_borrows() {
        let mut m = Metrics::new();
        m.record("s", Time::ZERO, 1.0);
        m.record("s", Time::ZERO + Dur::ms(1), 2.0);
        let sum: f64 = m.values_iter("s").sum();
        assert!((sum - 3.0).abs() < 1e-12);
        assert_eq!(m.values_iter("nope").count(), 0);
    }

    #[test]
    fn csv_round_trip() {
        let dir = std::env::temp_dir().join("selftune-csv-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.csv");
        write_csv(
            &path,
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "a,b\n1,2\n3,4\n");
    }

    #[test]
    fn csv_rejects_separators() {
        let dir = std::env::temp_dir().join("selftune-csv-test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.csv");
        let err = write_csv(&path, &["a,b"], &[]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }
}
