//! System-call identifiers and default in-kernel costs.
//!
//! The paper's tracer records timestamps at syscall entry and exit inside the
//! kernel (Section 4.1). The simulator mirrors that: workloads issue
//! [`SyscallNr`]s, the kernel charges an in-kernel CPU cost, and the
//! installed tracer hook observes both edges.
//!
//! The set of numbers covers the calls observed for `mplayer` in the paper's
//! Figure 4 (dominated by `ioctl` towards ALSA) plus the usual suspects for
//! media pipelines.

use crate::time::Dur;

/// Identifier of a (simulated) Linux system call.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[non_exhaustive]
pub enum SyscallNr {
    Read,
    Write,
    Writev,
    Ioctl,
    Poll,
    Select,
    Nanosleep,
    ClockNanosleep,
    ClockGettime,
    Gettimeofday,
    Futex,
    Mmap,
    Munmap,
    Brk,
    Open,
    Close,
    Lseek,
    Stat,
    Fstat,
    Madvise,
    SchedYield,
    Getpid,
    RtSigaction,
    RtSigprocmask,
    Socketcall,
    Recvfrom,
    Sendto,
    EpollWait,
    Readv,
    Dup,
}

impl SyscallNr {
    /// All defined system calls, in a stable order.
    pub const ALL: [SyscallNr; 30] = [
        SyscallNr::Read,
        SyscallNr::Write,
        SyscallNr::Writev,
        SyscallNr::Ioctl,
        SyscallNr::Poll,
        SyscallNr::Select,
        SyscallNr::Nanosleep,
        SyscallNr::ClockNanosleep,
        SyscallNr::ClockGettime,
        SyscallNr::Gettimeofday,
        SyscallNr::Futex,
        SyscallNr::Mmap,
        SyscallNr::Munmap,
        SyscallNr::Brk,
        SyscallNr::Open,
        SyscallNr::Close,
        SyscallNr::Lseek,
        SyscallNr::Stat,
        SyscallNr::Fstat,
        SyscallNr::Madvise,
        SyscallNr::SchedYield,
        SyscallNr::Getpid,
        SyscallNr::RtSigaction,
        SyscallNr::RtSigprocmask,
        SyscallNr::Socketcall,
        SyscallNr::Recvfrom,
        SyscallNr::Sendto,
        SyscallNr::EpollWait,
        SyscallNr::Readv,
        SyscallNr::Dup,
    ];

    /// Human-readable name, matching the Linux spelling.
    pub fn name(self) -> &'static str {
        match self {
            SyscallNr::Read => "read",
            SyscallNr::Write => "write",
            SyscallNr::Writev => "writev",
            SyscallNr::Ioctl => "ioctl",
            SyscallNr::Poll => "poll",
            SyscallNr::Select => "select",
            SyscallNr::Nanosleep => "nanosleep",
            SyscallNr::ClockNanosleep => "clock_nanosleep",
            SyscallNr::ClockGettime => "clock_gettime",
            SyscallNr::Gettimeofday => "gettimeofday",
            SyscallNr::Futex => "futex",
            SyscallNr::Mmap => "mmap",
            SyscallNr::Munmap => "munmap",
            SyscallNr::Brk => "brk",
            SyscallNr::Open => "open",
            SyscallNr::Close => "close",
            SyscallNr::Lseek => "lseek",
            SyscallNr::Stat => "stat",
            SyscallNr::Fstat => "fstat",
            SyscallNr::Madvise => "madvise",
            SyscallNr::SchedYield => "sched_yield",
            SyscallNr::Getpid => "getpid",
            SyscallNr::RtSigaction => "rt_sigaction",
            SyscallNr::RtSigprocmask => "rt_sigprocmask",
            SyscallNr::Socketcall => "socketcall",
            SyscallNr::Recvfrom => "recvfrom",
            SyscallNr::Sendto => "sendto",
            SyscallNr::EpollWait => "epoll_wait",
            SyscallNr::Readv => "readv",
            SyscallNr::Dup => "dup",
        }
    }

    /// Stable small integer for table indexing.
    pub fn index(self) -> usize {
        SyscallNr::ALL
            .iter()
            .position(|&s| s == self)
            .expect("SyscallNr::ALL covers every variant")
    }

    /// Default in-kernel CPU cost of the call on the simulated machine.
    ///
    /// Rough magnitudes for a ~2009-era x86 running at 800 MHz, as in the
    /// paper's testbed; workloads may override per call site.
    pub fn default_cost(self) -> Dur {
        match self {
            SyscallNr::ClockGettime | SyscallNr::Gettimeofday | SyscallNr::Getpid => Dur::ns(300),
            SyscallNr::SchedYield => Dur::ns(800),
            SyscallNr::Read | SyscallNr::Write | SyscallNr::Readv | SyscallNr::Writev => Dur::us(3),
            SyscallNr::Ioctl => Dur::us(2),
            SyscallNr::Poll | SyscallNr::Select | SyscallNr::EpollWait => Dur::us(2),
            SyscallNr::Nanosleep | SyscallNr::ClockNanosleep => Dur::us(2),
            SyscallNr::Futex => Dur::us(1),
            SyscallNr::Mmap | SyscallNr::Munmap | SyscallNr::Madvise => Dur::us(5),
            SyscallNr::Brk => Dur::us(2),
            SyscallNr::Open | SyscallNr::Stat => Dur::us(6),
            SyscallNr::Fstat | SyscallNr::Close | SyscallNr::Lseek | SyscallNr::Dup => Dur::us(1),
            SyscallNr::RtSigaction | SyscallNr::RtSigprocmask => Dur::us(1),
            SyscallNr::Socketcall | SyscallNr::Recvfrom | SyscallNr::Sendto => Dur::us(4),
        }
    }
}

impl core::fmt::Display for SyscallNr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn all_is_exhaustive_and_unique() {
        let set: BTreeSet<_> = SyscallNr::ALL.iter().collect();
        assert_eq!(set.len(), SyscallNr::ALL.len());
    }

    #[test]
    fn index_round_trips() {
        for (i, nr) in SyscallNr::ALL.iter().enumerate() {
            assert_eq!(nr.index(), i);
        }
    }

    #[test]
    fn names_are_nonempty_and_unique() {
        let names: BTreeSet<_> = SyscallNr::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), SyscallNr::ALL.len());
        assert!(names.iter().all(|n| !n.is_empty()));
    }

    #[test]
    fn costs_are_positive() {
        for nr in SyscallNr::ALL {
            assert!(nr.default_cost() > Dur::ZERO, "{nr} has zero cost");
        }
    }
}
