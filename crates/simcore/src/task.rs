//! The task (legacy application) model.
//!
//! A simulated task is a *black box* to the scheduler and the self-tuning
//! machinery, exactly as in the paper: it is driven by a [`Workload`] state
//! machine that yields [`Action`]s (compute, issue a system call, sleep,
//! exit). The kernel interprets the actions; the tracer only ever observes
//! the resulting syscall timestamps, and the controllers only ever observe
//! consumed CPU time.

use crate::metrics::Metrics;
use crate::syscall::SyscallNr;
use crate::time::{Dur, Time};

/// Identifier of a task inside one [`crate::kernel::Kernel`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TaskId(pub u32);

impl TaskId {
    /// Index into dense per-task arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl core::fmt::Display for TaskId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "task{}", self.0)
    }
}

/// Blocking behaviour of a system call.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Blocking {
    /// The call returns immediately after its in-kernel cost.
    None,
    /// The task blocks for the given span (I/O completion, timer, ...).
    For(Dur),
    /// The task blocks until the given absolute instant (`clock_nanosleep`
    /// with `TIMER_ABSTIME`). If in the past, it does not block.
    Until(Time),
}

/// One step of a task's behaviour.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Action {
    /// Consume the given amount of CPU time in user space.
    Compute(Dur),
    /// Issue a system call: charge `kernel` CPU time inside the kernel (the
    /// tracer may add overhead), then optionally block.
    Syscall {
        /// Which call is issued (traced).
        nr: SyscallNr,
        /// In-kernel CPU cost of the call body.
        kernel: Dur,
        /// Whether and how the call blocks.
        block: Blocking,
    },
    /// Block until the given absolute instant without issuing a traced call.
    SleepUntil(Time),
    /// Block for the given span without issuing a traced call.
    SleepFor(Dur),
    /// Terminate the task.
    Exit,
}

impl Action {
    /// Convenience: a syscall with its default in-kernel cost, non-blocking.
    pub fn syscall(nr: SyscallNr) -> Action {
        Action::Syscall {
            nr,
            kernel: nr.default_cost(),
            block: Blocking::None,
        }
    }

    /// Convenience: a blocking syscall with its default in-kernel cost.
    pub fn syscall_blocking(nr: SyscallNr, block: Blocking) -> Action {
        Action::Syscall {
            nr,
            kernel: nr.default_cost(),
            block,
        }
    }
}

/// Context handed to a [`Workload`] when the kernel asks for its next action.
pub struct TaskCtx<'a> {
    /// Current virtual time (the completion instant of the previous action).
    pub now: Time,
    /// The task being driven.
    pub task: TaskId,
    /// Application-level metrics sink (frame times, QoS marks, ...).
    pub metrics: &'a mut Metrics,
}

/// A task behaviour: a state machine yielding one [`Action`] at a time.
///
/// Implementations model legacy applications (media players, transcoders,
/// synthetic periodic tasks). They must not inspect scheduler state — the
/// whole point of the paper is that the application is unaware of the
/// adaptation machinery.
pub trait Workload {
    /// Returns the next action. Called when the previous action completed.
    fn next(&mut self, ctx: &mut TaskCtx<'_>) -> Action;
}

/// A scripted workload: replays a fixed list of actions, optionally looping.
///
/// Useful in unit tests and for microbenchmarks.
///
/// # Examples
///
/// ```
/// use selftune_simcore::task::{Action, Script};
/// use selftune_simcore::time::Dur;
///
/// let s = Script::once(vec![Action::Compute(Dur::ms(2)), Action::Exit]);
/// assert_eq!(s.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Script {
    actions: Vec<Action>,
    pos: usize,
    looping: bool,
}

impl Script {
    /// Plays the actions once, then exits.
    pub fn once(actions: Vec<Action>) -> Script {
        Script {
            actions,
            pos: 0,
            looping: false,
        }
    }

    /// Replays the action list forever.
    ///
    /// # Panics
    ///
    /// Panics if `actions` is empty (the workload could never make progress).
    pub fn forever(actions: Vec<Action>) -> Script {
        assert!(!actions.is_empty(), "Script::forever needs actions");
        Script {
            actions,
            pos: 0,
            looping: true,
        }
    }

    /// Number of scripted actions.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Returns `true` if the script holds no actions.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }
}

impl Workload for Script {
    fn next(&mut self, _ctx: &mut TaskCtx<'_>) -> Action {
        if self.pos >= self.actions.len() {
            if self.looping {
                self.pos = 0;
            } else {
                return Action::Exit;
            }
        }
        let a = self.actions[self.pos];
        self.pos += 1;
        a
    }
}

/// A workload built from a closure, for ad-hoc tests.
pub struct FnWorkload<F: FnMut(&mut TaskCtx<'_>) -> Action>(pub F);

impl<F: FnMut(&mut TaskCtx<'_>) -> Action> Workload for FnWorkload<F> {
    fn next(&mut self, ctx: &mut TaskCtx<'_>) -> Action {
        (self.0)(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_with<'a>(metrics: &'a mut Metrics) -> TaskCtx<'a> {
        TaskCtx {
            now: Time::ZERO,
            task: TaskId(0),
            metrics,
        }
    }

    #[test]
    fn script_once_then_exit() {
        let mut m = Metrics::default();
        let mut s = Script::once(vec![Action::Compute(Dur::ms(1))]);
        let mut ctx = ctx_with(&mut m);
        assert_eq!(s.next(&mut ctx), Action::Compute(Dur::ms(1)));
        assert_eq!(s.next(&mut ctx), Action::Exit);
        assert_eq!(s.next(&mut ctx), Action::Exit);
    }

    #[test]
    fn script_forever_loops() {
        let mut m = Metrics::default();
        let mut s = Script::forever(vec![
            Action::Compute(Dur::ms(1)),
            Action::SleepFor(Dur::ms(2)),
        ]);
        let mut ctx = ctx_with(&mut m);
        for _ in 0..3 {
            assert_eq!(s.next(&mut ctx), Action::Compute(Dur::ms(1)));
            assert_eq!(s.next(&mut ctx), Action::SleepFor(Dur::ms(2)));
        }
    }

    #[test]
    #[should_panic(expected = "needs actions")]
    fn empty_forever_panics() {
        let _ = Script::forever(vec![]);
    }

    #[test]
    fn action_syscall_helpers() {
        let a = Action::syscall(SyscallNr::Ioctl);
        match a {
            Action::Syscall { nr, kernel, block } => {
                assert_eq!(nr, SyscallNr::Ioctl);
                assert_eq!(kernel, SyscallNr::Ioctl.default_cost());
                assert_eq!(block, Blocking::None);
            }
            _ => panic!("expected syscall"),
        }
    }

    #[test]
    fn fn_workload_delegates() {
        let mut m = Metrics::default();
        let mut w = FnWorkload(|_ctx: &mut TaskCtx<'_>| Action::Exit);
        let mut ctx = ctx_with(&mut m);
        assert_eq!(w.next(&mut ctx), Action::Exit);
    }
}
