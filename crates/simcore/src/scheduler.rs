//! The scheduler interface the kernel drives, plus a round-robin reference
//! implementation.
//!
//! Real scheduling policies (CBS/EDF reservations, fixed priority, the
//! supervisor) live in the `selftune-sched` crate; this module defines the
//! contract between the discrete-event kernel and any policy.

use crate::task::TaskId;
use crate::time::{Dur, Time};
use std::collections::VecDeque;

/// A CPU scheduling policy driven by the kernel.
///
/// # Contract
///
/// * The kernel calls [`Scheduler::on_ready`] exactly once per wake-up:
///   a task that is already ready/running never gets a second `on_ready`.
/// * [`Scheduler::on_block`] / [`Scheduler::on_exit`] remove the task from
///   consideration until the next `on_ready` (never, for `on_exit`).
/// * [`Scheduler::charge`] reports CPU actually consumed by a task returned
///   from [`Scheduler::pick`]; `now` is the instant at the *end* of the run.
/// * [`Scheduler::pick`] must be idempotent between state changes: calling
///   it twice without intervening events returns the same task.
/// * [`Scheduler::horizon`] bounds how long the picked task may run before
///   the policy wants control back (budget exhaustion, timeslice end);
///   `None` means "until the next external event".
/// * [`Scheduler::next_timer`] exposes the earliest instant at which the
///   policy has internal work (e.g. budget replenishment); the kernel calls
///   [`Scheduler::on_timer`] once that instant is reached.
pub trait Scheduler {
    /// A task became ready to run at `now`.
    fn on_ready(&mut self, task: TaskId, now: Time);
    /// The (previously ready) task blocked at `now`.
    fn on_block(&mut self, task: TaskId, now: Time);
    /// The task exited at `now`.
    fn on_exit(&mut self, task: TaskId, now: Time);
    /// `task` ran for `ran` units of CPU, finishing at `now`.
    fn charge(&mut self, task: TaskId, ran: Dur, now: Time);
    /// Chooses the task to run now, if any.
    fn pick(&mut self, now: Time) -> Option<TaskId>;
    /// Upper bound on how long `task` may run from `now` before the policy
    /// needs control back.
    fn horizon(&self, task: TaskId, now: Time) -> Option<Dur>;
    /// Earliest instant of internal policy work (replenishments, ...).
    fn next_timer(&self, now: Time) -> Option<Time>;
    /// Performs internal policy work due at `now`.
    fn on_timer(&mut self, now: Time);
}

/// Preemptible round-robin over all ready tasks with a fixed timeslice.
///
/// The reference policy: models a plain best-effort scheduler and is used in
/// kernel unit tests. Legacy tasks under the paper's machinery use the
/// reservation scheduler from `selftune-sched` instead.
#[derive(Debug)]
pub struct RoundRobin {
    queue: VecDeque<TaskId>,
    running: Option<TaskId>,
    slice: Dur,
    remaining: Dur,
}

impl RoundRobin {
    /// Creates a round-robin scheduler with the given timeslice.
    ///
    /// # Panics
    ///
    /// Panics if `slice` is zero.
    pub fn new(slice: Dur) -> RoundRobin {
        assert!(!slice.is_zero(), "RoundRobin needs a non-zero slice");
        RoundRobin {
            queue: VecDeque::new(),
            running: None,
            slice,
            remaining: Dur::ZERO,
        }
    }

    fn remove_queued(&mut self, task: TaskId) {
        self.queue.retain(|&t| t != task);
        if self.running == Some(task) {
            self.running = None;
        }
    }
}

impl Scheduler for RoundRobin {
    fn on_ready(&mut self, task: TaskId, _now: Time) {
        debug_assert!(
            self.running != Some(task) && !self.queue.contains(&task),
            "{task} readied twice"
        );
        self.queue.push_back(task);
    }

    fn on_block(&mut self, task: TaskId, _now: Time) {
        self.remove_queued(task);
    }

    fn on_exit(&mut self, task: TaskId, _now: Time) {
        self.remove_queued(task);
    }

    fn charge(&mut self, task: TaskId, ran: Dur, _now: Time) {
        if self.running == Some(task) {
            self.remaining = self.remaining.saturating_sub(ran);
        }
    }

    fn pick(&mut self, _now: Time) -> Option<TaskId> {
        if let Some(t) = self.running {
            if self.remaining > Dur::ZERO {
                return Some(t);
            }
            // Slice exhausted: rotate to the back of the queue.
            self.queue.push_back(t);
            self.running = None;
        }
        let next = self.queue.pop_front()?;
        self.running = Some(next);
        self.remaining = self.slice;
        Some(next)
    }

    fn horizon(&self, task: TaskId, _now: Time) -> Option<Dur> {
        if self.running == Some(task) {
            Some(self.remaining)
        } else {
            None
        }
    }

    fn next_timer(&self, _now: Time) -> Option<Time> {
        None
    }

    fn on_timer(&mut self, _now: Time) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: Time = Time::ZERO;

    #[test]
    fn picks_in_fifo_order() {
        let mut rr = RoundRobin::new(Dur::ms(4));
        rr.on_ready(TaskId(1), T0);
        rr.on_ready(TaskId(2), T0);
        assert_eq!(rr.pick(T0), Some(TaskId(1)));
        // Idempotent until state changes.
        assert_eq!(rr.pick(T0), Some(TaskId(1)));
    }

    #[test]
    fn rotates_after_slice() {
        let mut rr = RoundRobin::new(Dur::ms(4));
        rr.on_ready(TaskId(1), T0);
        rr.on_ready(TaskId(2), T0);
        assert_eq!(rr.pick(T0), Some(TaskId(1)));
        rr.charge(TaskId(1), Dur::ms(4), T0 + Dur::ms(4));
        assert_eq!(rr.pick(T0 + Dur::ms(4)), Some(TaskId(2)));
        rr.charge(TaskId(2), Dur::ms(4), T0 + Dur::ms(8));
        assert_eq!(rr.pick(T0 + Dur::ms(8)), Some(TaskId(1)));
    }

    #[test]
    fn block_releases_cpu() {
        let mut rr = RoundRobin::new(Dur::ms(4));
        rr.on_ready(TaskId(1), T0);
        rr.on_ready(TaskId(2), T0);
        assert_eq!(rr.pick(T0), Some(TaskId(1)));
        rr.on_block(TaskId(1), T0 + Dur::ms(1));
        assert_eq!(rr.pick(T0 + Dur::ms(1)), Some(TaskId(2)));
    }

    #[test]
    fn horizon_tracks_slice() {
        let mut rr = RoundRobin::new(Dur::ms(4));
        rr.on_ready(TaskId(1), T0);
        assert_eq!(rr.pick(T0), Some(TaskId(1)));
        assert_eq!(rr.horizon(TaskId(1), T0), Some(Dur::ms(4)));
        rr.charge(TaskId(1), Dur::ms(1), T0 + Dur::ms(1));
        assert_eq!(rr.horizon(TaskId(1), T0 + Dur::ms(1)), Some(Dur::ms(3)));
        assert_eq!(rr.horizon(TaskId(9), T0), None);
    }

    #[test]
    fn empty_picks_none() {
        let mut rr = RoundRobin::new(Dur::ms(4));
        assert_eq!(rr.pick(T0), None);
        rr.on_ready(TaskId(1), T0);
        rr.on_exit(TaskId(1), T0);
        assert_eq!(rr.pick(T0), None);
    }
}
