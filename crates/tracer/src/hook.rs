//! The tracer hook installed into the kernel, and its user-space reader.
//!
//! [`Tracer::create`] returns the pair `(hook, reader)` sharing one ring
//! buffer, mirroring the paper's split between the kernel patch (producer)
//! and the `lfs++` tool that drains batches of timestamps through a
//! character device (consumer). The reader also carries the configuration
//! path: it can restrict tracing to a subset of tasks and system calls so
//! that "system calls that are totally unrelated with the scheduling
//! events" do not pollute the analyser (Section 4.1).

use crate::event::{Edge, TraceEvent};
use crate::overhead::{OverheadParams, TracerKind};
use crate::ring::RingBuffer;
use selftune_simcore::kernel::SyscallHook;
use selftune_simcore::syscall::SyscallNr;
use selftune_simcore::task::TaskId;
use selftune_simcore::time::{Dur, Time};
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;

/// Which tasks/calls are recorded; `None` means "all".
#[derive(Debug, Default, Clone)]
pub struct TraceFilter {
    /// Tasks to trace (`None` = every task).
    pub tasks: Option<BTreeSet<TaskId>>,
    /// Calls to trace (`None` = every call).
    pub calls: Option<BTreeSet<SyscallNr>>,
}

impl TraceFilter {
    /// A filter matching everything.
    pub fn all() -> TraceFilter {
        TraceFilter::default()
    }

    /// A filter matching only the given tasks (all calls).
    pub fn tasks_only<I: IntoIterator<Item = TaskId>>(tasks: I) -> TraceFilter {
        TraceFilter {
            tasks: Some(tasks.into_iter().collect()),
            calls: None,
        }
    }

    /// Returns `true` if the `(task, call)` pair passes the filter.
    pub fn matches(&self, task: TaskId, nr: SyscallNr) -> bool {
        self.tasks.as_ref().is_none_or(|s| s.contains(&task))
            && self.calls.as_ref().is_none_or(|s| s.contains(&nr))
    }
}

/// Tracer configuration.
#[derive(Debug, Clone)]
pub struct TracerConfig {
    /// Tracing mechanism (determines overhead and whether events are
    /// recorded).
    pub kind: TracerKind,
    /// Ring-buffer capacity in events.
    pub capacity: usize,
    /// Initial filter.
    pub filter: TraceFilter,
    /// Machine cost parameters.
    pub overhead: OverheadParams,
    /// Also record blocked→ready scheduler transitions (`sched_wakeup`),
    /// the paper's Section 6 alternative to syscall tracing. Wake records
    /// carry [`Edge::Wake`] with `nr = SchedYield` as a placeholder.
    pub trace_sched_events: bool,
}

impl Default for TracerConfig {
    fn default() -> Self {
        TracerConfig {
            kind: TracerKind::QTrace,
            capacity: 1 << 16,
            filter: TraceFilter::all(),
            overhead: OverheadParams::default(),
            trace_sched_events: false,
        }
    }
}

#[derive(Debug)]
struct Shared {
    buffer: RingBuffer<TraceEvent>,
    filter: TraceFilter,
    kind: TracerKind,
    overhead: OverheadParams,
    enabled: bool,
    trace_sched_events: bool,
}

/// Builder for the `(hook, reader)` pair.
pub struct Tracer;

impl Tracer {
    /// Creates the kernel-side hook and the user-space reader sharing one
    /// buffer.
    pub fn create(cfg: TracerConfig) -> (TracerHook, TraceReader) {
        let shared = Rc::new(RefCell::new(Shared {
            buffer: RingBuffer::new(cfg.capacity),
            filter: cfg.filter,
            kind: cfg.kind,
            overhead: cfg.overhead,
            enabled: true,
            trace_sched_events: cfg.trace_sched_events,
        }));
        (
            TracerHook {
                shared: Rc::clone(&shared),
            },
            TraceReader { shared },
        )
    }
}

/// The kernel-side producer: install into the simulator with
/// [`selftune_simcore::kernel::Kernel::install_hook`].
pub struct TracerHook {
    shared: Rc<RefCell<Shared>>,
}

impl TracerHook {
    fn record(&self, task: TaskId, nr: SyscallNr, edge: Edge, now: Time) -> Dur {
        let mut s = self.shared.borrow_mut();
        if !s.enabled {
            return Dur::ZERO;
        }
        // The filter is evaluated in the kernel patch, so filtered-out calls
        // cost (almost) nothing; we charge overhead only for recorded ones.
        if !s.kind.records() || !s.filter.matches(task, nr) {
            return Dur::ZERO;
        }
        s.buffer.push(TraceEvent {
            task,
            nr,
            edge,
            at: now,
        });
        s.overhead.per_edge(s.kind)
    }
}

impl SyscallHook for TracerHook {
    fn on_enter(&mut self, task: TaskId, nr: SyscallNr, now: Time) -> Dur {
        self.record(task, nr, Edge::Enter, now)
    }

    fn on_exit(&mut self, task: TaskId, nr: SyscallNr, now: Time) -> Dur {
        self.record(task, nr, Edge::Exit, now)
    }

    fn on_wake(&mut self, task: TaskId, now: Time) -> Dur {
        if !self.shared.borrow().trace_sched_events {
            return Dur::ZERO;
        }
        // The wake record reuses the syscall channel with a placeholder
        // number; the kernel stamps it with negligible cost, like a
        // tracepoint.
        self.record(task, SyscallNr::SchedYield, Edge::Wake, now)
    }
}

/// The user-space consumer: drains event batches and reconfigures the
/// tracer (the paper's character-device interface).
pub struct TraceReader {
    shared: Rc<RefCell<Shared>>,
}

impl TraceReader {
    /// Downloads and clears all buffered events (one batch).
    pub fn drain(&self) -> Vec<TraceEvent> {
        self.shared.borrow_mut().buffer.drain()
    }

    /// Downloads all buffered events into `out` (cleared first), reusing
    /// its allocation across batches.
    pub fn drain_into(&self, out: &mut Vec<TraceEvent>) {
        self.shared.borrow_mut().buffer.drain_into(out);
    }

    /// Number of events currently buffered.
    pub fn pending(&self) -> usize {
        self.shared.borrow().buffer.len()
    }

    /// Total events recorded since creation.
    pub fn total_recorded(&self) -> u64 {
        self.shared.borrow().buffer.total_pushed()
    }

    /// Events lost to ring-buffer overwrite.
    pub fn total_dropped(&self) -> u64 {
        self.shared.borrow().buffer.total_dropped()
    }

    /// Replaces the trace filter.
    pub fn set_filter(&self, filter: TraceFilter) {
        self.shared.borrow_mut().filter = filter;
    }

    /// Enables or disables recording (overhead stops too when disabled).
    pub fn set_enabled(&self, enabled: bool) {
        self.shared.borrow_mut().enabled = enabled;
    }

    /// Switches the tracing mechanism at runtime.
    pub fn set_kind(&self, kind: TracerKind) {
        self.shared.borrow_mut().kind = kind;
    }

    /// Enables/disables scheduler-event (wake) tracing at runtime.
    pub fn set_sched_events(&self, on: bool) {
        self.shared.borrow_mut().trace_sched_events = on;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> Time {
        Time::ZERO + Dur::ms(ms)
    }

    #[test]
    fn records_enter_and_exit() {
        let (mut hook, reader) = Tracer::create(TracerConfig::default());
        hook.on_enter(TaskId(1), SyscallNr::Ioctl, t(1));
        hook.on_exit(TaskId(1), SyscallNr::Ioctl, t(2));
        let evs = reader.drain();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].edge, Edge::Enter);
        assert_eq!(evs[1].edge, Edge::Exit);
        assert!(reader.drain().is_empty());
    }

    #[test]
    fn overhead_matches_kind() {
        let cfg = TracerConfig {
            kind: TracerKind::Strace,
            ..TracerConfig::default()
        };
        let per_edge = cfg.overhead.per_edge(TracerKind::Strace);
        let (mut hook, _reader) = Tracer::create(cfg);
        let ov = hook.on_enter(TaskId(1), SyscallNr::Read, t(1));
        assert_eq!(ov, per_edge);
    }

    #[test]
    fn notrace_records_nothing_and_costs_nothing() {
        let cfg = TracerConfig {
            kind: TracerKind::NoTrace,
            ..TracerConfig::default()
        };
        let (mut hook, reader) = Tracer::create(cfg);
        let ov = hook.on_enter(TaskId(1), SyscallNr::Read, t(1));
        assert_eq!(ov, Dur::ZERO);
        assert_eq!(reader.pending(), 0);
    }

    #[test]
    fn task_filter_drops_others() {
        let (mut hook, reader) = Tracer::create(TracerConfig::default());
        reader.set_filter(TraceFilter::tasks_only([TaskId(7)]));
        hook.on_enter(TaskId(1), SyscallNr::Read, t(1));
        hook.on_enter(TaskId(7), SyscallNr::Read, t(2));
        let evs = reader.drain();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].task, TaskId(7));
    }

    #[test]
    fn call_filter_drops_unrelated_calls() {
        let (mut hook, reader) = Tracer::create(TracerConfig::default());
        reader.set_filter(TraceFilter {
            tasks: None,
            calls: Some([SyscallNr::Ioctl].into_iter().collect()),
        });
        hook.on_enter(TaskId(1), SyscallNr::Brk, t(1));
        hook.on_enter(TaskId(1), SyscallNr::Ioctl, t(2));
        let evs = reader.drain();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].nr, SyscallNr::Ioctl);
    }

    #[test]
    fn filtered_calls_cost_nothing() {
        let (mut hook, reader) = Tracer::create(TracerConfig::default());
        reader.set_filter(TraceFilter::tasks_only([TaskId(7)]));
        let ov = hook.on_enter(TaskId(1), SyscallNr::Read, t(1));
        assert_eq!(ov, Dur::ZERO);
    }

    #[test]
    fn disable_stops_recording() {
        let (mut hook, reader) = Tracer::create(TracerConfig::default());
        reader.set_enabled(false);
        hook.on_enter(TaskId(1), SyscallNr::Read, t(1));
        assert_eq!(reader.pending(), 0);
        reader.set_enabled(true);
        hook.on_enter(TaskId(1), SyscallNr::Read, t(2));
        assert_eq!(reader.pending(), 1);
    }

    #[test]
    fn drop_counter_visible_to_reader() {
        let cfg = TracerConfig {
            capacity: 2,
            ..TracerConfig::default()
        };
        let (mut hook, reader) = Tracer::create(cfg);
        for i in 0..5 {
            hook.on_enter(TaskId(1), SyscallNr::Read, t(i));
        }
        assert_eq!(reader.total_recorded(), 5);
        assert_eq!(reader.total_dropped(), 3);
        assert_eq!(reader.pending(), 2);
    }
}
