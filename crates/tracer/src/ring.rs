//! The statically-sized circular buffer backing the kernel tracer.
//!
//! The paper's `qtrace` patch logs timestamps into "a statically allocated
//! circular buffer" drained in batches by the user-space `lfs++` tool
//! through a character device (Section 4.1). When the producer outruns the
//! consumer the oldest events are overwritten; the drop counter lets
//! experiments size the buffer correctly.

use std::collections::VecDeque;

/// Fixed-capacity circular buffer that overwrites the oldest entry on
/// overflow.
#[derive(Debug)]
pub struct RingBuffer<T> {
    buf: VecDeque<T>,
    capacity: usize,
    pushed: u64,
    dropped: u64,
}

impl<T> RingBuffer<T> {
    /// Creates a buffer holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> RingBuffer<T> {
        assert!(capacity > 0, "ring buffer capacity must be positive");
        RingBuffer {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            pushed: 0,
            dropped: 0,
        }
    }

    /// Appends an entry, overwriting the oldest if full.
    pub fn push(&mut self, item: T) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(item);
        self.pushed += 1;
    }

    /// Removes and returns all buffered entries, oldest first.
    pub fn drain(&mut self) -> Vec<T> {
        self.buf.drain(..).collect()
    }

    /// Moves all buffered entries into `out` (cleared first), oldest
    /// first.
    ///
    /// The allocation-free sibling of [`RingBuffer::drain`]: a consumer
    /// draining periodically reuses one buffer instead of allocating a
    /// fresh `Vec` per batch — this is the paper's user-space daemon
    /// reading the character device into a preallocated area.
    pub fn drain_into(&mut self, out: &mut Vec<T>) {
        out.clear();
        out.extend(self.buf.drain(..));
    }

    /// Number of entries currently buffered.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` if no entries are buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total entries ever pushed.
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Entries lost to overwrite.
    pub fn total_dropped(&self) -> u64 {
        self.dropped
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_drain_in_order() {
        let mut rb = RingBuffer::new(4);
        for i in 0..3 {
            rb.push(i);
        }
        assert_eq!(rb.drain(), vec![0, 1, 2]);
        assert!(rb.is_empty());
    }

    #[test]
    fn overflow_drops_oldest() {
        let mut rb = RingBuffer::new(3);
        for i in 0..5 {
            rb.push(i);
        }
        assert_eq!(rb.total_dropped(), 2);
        assert_eq!(rb.drain(), vec![2, 3, 4]);
    }

    #[test]
    fn counters_track_totals() {
        let mut rb = RingBuffer::new(2);
        rb.push('a');
        rb.push('b');
        rb.push('c');
        assert_eq!(rb.total_pushed(), 3);
        assert_eq!(rb.total_dropped(), 1);
        assert_eq!(rb.len(), 2);
    }

    #[test]
    fn drain_resets_contents_not_counters() {
        let mut rb = RingBuffer::new(2);
        rb.push(1);
        let _ = rb.drain();
        rb.push(2);
        assert_eq!(rb.total_pushed(), 2);
        assert_eq!(rb.drain(), vec![2]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _: RingBuffer<u8> = RingBuffer::new(0);
    }
}
