//! Trace event records and per-call statistics.

use selftune_simcore::syscall::SyscallNr;
use selftune_simcore::task::TaskId;
use selftune_simcore::time::Time;

/// Which edge of the system call was observed.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Edge {
    /// Entry into the kernel.
    Enter,
    /// Return to user space (for blocking calls: at wake-up, when the
    /// return path runs).
    Exit,
    /// Blocked → ready scheduler transition (`sched_wakeup`); recorded
    /// only when [`crate::TracerConfig::trace_sched_events`] is set — the
    /// alternative event source suggested in the paper's Section 6.
    Wake,
}

/// One timestamped syscall observation.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct TraceEvent {
    /// The traced task.
    pub task: TaskId,
    /// Which call was issued.
    pub nr: SyscallNr,
    /// Entry or exit edge.
    pub edge: Edge,
    /// Kernel timestamp of the edge.
    pub at: Time,
}

/// Counts events per system call, for the paper's Figure 4 histogram.
///
/// Only `Enter` edges are counted, so each issued call counts once.
pub fn counts_by_call(events: &[TraceEvent]) -> Vec<(SyscallNr, u64)> {
    let mut counts = [0u64; SyscallNr::ALL.len()];
    for e in events {
        if e.edge == Edge::Enter {
            counts[e.nr.index()] += 1;
        }
    }
    let mut out: Vec<(SyscallNr, u64)> = SyscallNr::ALL
        .iter()
        .copied()
        .zip(counts)
        .filter(|&(_, c)| c > 0)
        .collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    out
}

/// Extracts the entry-edge timestamps (seconds) for a given task — the
/// event train handed to the period analyser.
pub fn entry_times_secs(events: &[TraceEvent], task: TaskId) -> Vec<f64> {
    events
        .iter()
        .filter(|e| e.task == task && e.edge == Edge::Enter)
        .map(|e| e.at.as_secs_f64())
        .collect()
}

/// Like [`entry_times_secs`], but appends into a caller-owned buffer after
/// clearing it, so a sampling loop (the manager steps once per task per
/// period) reuses one allocation instead of growing a fresh `Vec` each time.
pub fn entry_times_into(events: &[TraceEvent], task: TaskId, out: &mut Vec<f64>) {
    out.clear();
    out.extend(
        events
            .iter()
            .filter(|e| e.task == task && e.edge == Edge::Enter)
            .map(|e| e.at.as_secs_f64()),
    );
}

/// Extracts the wake-edge timestamps (seconds) for a given task — the
/// scheduler-event train (paper Section 6 alternative source).
pub fn wake_times_secs(events: &[TraceEvent], task: TaskId) -> Vec<f64> {
    events
        .iter()
        .filter(|e| e.task == task && e.edge == Edge::Wake)
        .map(|e| e.at.as_secs_f64())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use selftune_simcore::time::Dur;

    fn ev(task: u32, nr: SyscallNr, edge: Edge, ms: u64) -> TraceEvent {
        TraceEvent {
            task: TaskId(task),
            nr,
            edge,
            at: Time::ZERO + Dur::ms(ms),
        }
    }

    #[test]
    fn counts_only_entries_sorted_desc() {
        let events = vec![
            ev(1, SyscallNr::Ioctl, Edge::Enter, 0),
            ev(1, SyscallNr::Ioctl, Edge::Exit, 1),
            ev(1, SyscallNr::Ioctl, Edge::Enter, 2),
            ev(1, SyscallNr::Read, Edge::Enter, 3),
        ];
        let c = counts_by_call(&events);
        assert_eq!(c, vec![(SyscallNr::Ioctl, 2), (SyscallNr::Read, 1)]);
    }

    #[test]
    fn entry_times_filter_by_task() {
        let events = vec![
            ev(1, SyscallNr::Read, Edge::Enter, 10),
            ev(2, SyscallNr::Read, Edge::Enter, 20),
            ev(1, SyscallNr::Read, Edge::Exit, 30),
            ev(1, SyscallNr::Write, Edge::Enter, 40),
        ];
        let ts = entry_times_secs(&events, TaskId(1));
        assert_eq!(ts.len(), 2);
        assert!((ts[0] - 0.010).abs() < 1e-12);
        assert!((ts[1] - 0.040).abs() < 1e-12);
    }

    #[test]
    fn empty_input_gives_empty_outputs() {
        assert!(counts_by_call(&[]).is_empty());
        assert!(entry_times_secs(&[], TaskId(0)).is_empty());
    }

    #[test]
    fn entry_times_into_matches_and_reuses_capacity() {
        let events = vec![
            ev(1, SyscallNr::Read, Edge::Enter, 10),
            ev(2, SyscallNr::Read, Edge::Enter, 20),
            ev(1, SyscallNr::Write, Edge::Enter, 40),
        ];
        let mut buf = Vec::new();
        entry_times_into(&events, TaskId(1), &mut buf);
        assert_eq!(buf, entry_times_secs(&events, TaskId(1)));
        // A second, smaller extraction reuses the buffer: same backing
        // allocation, no growth.
        let cap = buf.capacity();
        let ptr = buf.as_ptr();
        entry_times_into(&events, TaskId(2), &mut buf);
        assert_eq!(buf.len(), 1);
        assert_eq!(buf.capacity(), cap);
        assert_eq!(buf.as_ptr(), ptr);
    }
}
