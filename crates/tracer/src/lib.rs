//! # selftune-tracer
//!
//! The simulated counterpart of the paper's `qtrace` kernel tracer
//! (Section 4.1): timestamps at system-call entry/exit recorded into a
//! circular buffer, filtered per task and per call, drained in batches by a
//! user-space reader — plus overhead models for the tracers compared in
//! Table 1 (`NOTRACE`, `QTRACE`, `QOSTRACE`, `STRACE`).
//!
//! * [`ring`] — the statically-sized circular buffer.
//! * [`event`] — trace records and per-call statistics (Figure 4).
//! * [`overhead`] — per-edge overhead models (Table 1).
//! * [`hook`] — the kernel hook + user-space reader pair.

pub mod event;
pub mod hook;
pub mod overhead;
pub mod ring;

pub use event::{
    counts_by_call, entry_times_into, entry_times_secs, wake_times_secs, Edge, TraceEvent,
};
pub use hook::{TraceFilter, TraceReader, Tracer, TracerConfig, TracerHook};
pub use overhead::{OverheadParams, TracerKind};
pub use ring::RingBuffer;
