//! Overhead models for the tracers compared in the paper's Table 1.
//!
//! | Tracer     | Mechanism                                   | Overhead source |
//! |------------|---------------------------------------------|-----------------|
//! | `NoTrace`  | tracing disabled                            | none            |
//! | `QTrace`   | in-kernel timestamp logging (the paper's)   | per-edge log + amortised batch download |
//! | `QosTrace` | `ptrace()`-based tool from the authors' \[8\] | two context switches per edge |
//! | `Strace`   | standard `strace`                           | two context switches + argument decoding per edge |
//!
//! The per-edge costs are charged to the traced task's critical path, which
//! is exactly what Table 1 measures: the wall-clock inflation of an
//! `ffmpeg` transcode run under each tracer.

use selftune_simcore::time::Dur;

/// Which tracing mechanism is attached.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum TracerKind {
    /// No tracer (baseline row of Table 1).
    NoTrace,
    /// The paper's kernel tracer (Section 4.1).
    #[default]
    QTrace,
    /// The authors' earlier `ptrace`-based tool.
    QosTrace,
    /// Standard `strace`.
    Strace,
}

impl TracerKind {
    /// Display name matching the paper's Table 1 rows.
    pub fn name(self) -> &'static str {
        match self {
            TracerKind::NoTrace => "NOTRACE",
            TracerKind::QTrace => "QTRACE",
            TracerKind::QosTrace => "QOSTRACE",
            TracerKind::Strace => "STRACE",
        }
    }

    /// Whether this tracer records events (all but `NoTrace`).
    pub fn records(self) -> bool {
        self != TracerKind::NoTrace
    }
}

/// Cost parameters of the simulated machine's tracing paths.
#[derive(Copy, Clone, Debug)]
pub struct OverheadParams {
    /// In-kernel logging cost per edge for `QTrace` (timestamp + ring-buffer
    /// store), including the amortised cost of the batch download through
    /// the character device.
    pub qtrace_log: Dur,
    /// One context switch on the simulated machine (≈ 2009-era x86 at
    /// 800 MHz). `ptrace`-based tracers pay two of these per edge: to the
    /// tracer process and back.
    pub ctx_switch: Dur,
    /// `strace`'s user-space argument decoding and formatting, per edge.
    pub strace_decode: Dur,
}

impl Default for OverheadParams {
    fn default() -> Self {
        OverheadParams {
            qtrace_log: Dur::ns(450),
            ctx_switch: Dur::ns(900),
            strace_decode: Dur::us(2),
        }
    }
}

impl OverheadParams {
    /// Overhead charged per syscall *edge* (entry or exit) for `kind`.
    pub fn per_edge(&self, kind: TracerKind) -> Dur {
        match kind {
            TracerKind::NoTrace => Dur::ZERO,
            TracerKind::QTrace => self.qtrace_log,
            TracerKind::QosTrace => self.ctx_switch * 2,
            TracerKind::Strace => self.ctx_switch * 2 + self.strace_decode,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn notrace_is_free() {
        let p = OverheadParams::default();
        assert_eq!(p.per_edge(TracerKind::NoTrace), Dur::ZERO);
    }

    #[test]
    fn ordering_matches_table1() {
        // Table 1: QTRACE < QOSTRACE < STRACE.
        let p = OverheadParams::default();
        let q = p.per_edge(TracerKind::QTrace);
        let qos = p.per_edge(TracerKind::QosTrace);
        let s = p.per_edge(TracerKind::Strace);
        assert!(q < qos && qos < s, "{q} {qos} {s}");
    }

    #[test]
    fn ptrace_pays_double_switch() {
        let p = OverheadParams {
            qtrace_log: Dur::ns(100),
            ctx_switch: Dur::us(1),
            strace_decode: Dur::us(3),
        };
        assert_eq!(p.per_edge(TracerKind::QosTrace), Dur::us(2));
        assert_eq!(p.per_edge(TracerKind::Strace), Dur::us(5));
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(TracerKind::NoTrace.name(), "NOTRACE");
        assert_eq!(TracerKind::QTrace.name(), "QTRACE");
        assert_eq!(TracerKind::QosTrace.name(), "QOSTRACE");
        assert_eq!(TracerKind::Strace.name(), "STRACE");
    }

    #[test]
    fn only_notrace_skips_recording() {
        assert!(!TracerKind::NoTrace.records());
        assert!(TracerKind::QTrace.records());
        assert!(TracerKind::QosTrace.records());
        assert!(TracerKind::Strace.records());
    }
}
