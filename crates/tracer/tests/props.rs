//! Property-based tests for the ring buffer and the filtered hook.

use proptest::prelude::*;
use selftune_simcore::kernel::SyscallHook;
use selftune_simcore::syscall::SyscallNr;
use selftune_simcore::task::TaskId;
use selftune_simcore::time::Time;
use selftune_tracer::{RingBuffer, TraceFilter, Tracer, TracerConfig};

proptest! {
    /// The ring always yields the newest min(cap, n) items, in push order,
    /// and its counters add up.
    #[test]
    fn ring_keeps_newest_suffix(cap in 1usize..64, n in 0usize..300) {
        let mut rb = RingBuffer::new(cap);
        for i in 0..n {
            rb.push(i);
        }
        prop_assert_eq!(rb.total_pushed(), n as u64);
        prop_assert_eq!(rb.total_dropped(), n.saturating_sub(cap) as u64);
        let drained = rb.drain();
        let expect: Vec<usize> = (n.saturating_sub(cap)..n).collect();
        prop_assert_eq!(drained, expect);
    }

    /// Interleaved pushes and drains never lose undrained items below
    /// capacity.
    #[test]
    fn ring_interleaved_ops(ops in prop::collection::vec(0u8..4, 1..200)) {
        let cap = 16;
        let mut rb = RingBuffer::new(cap);
        let mut next = 0u64;
        let mut expected: Vec<u64> = Vec::new();
        for op in ops {
            if op < 3 {
                rb.push(next);
                expected.push(next);
                next += 1;
                if expected.len() > cap {
                    expected.remove(0);
                }
            } else {
                let got = rb.drain();
                prop_assert_eq!(got, expected.clone());
                expected.clear();
            }
        }
    }

    /// Every recorded event passes the filter; nothing else is recorded.
    #[test]
    fn filter_is_sound_and_complete(
        events in prop::collection::vec((0u32..6, 0usize..5), 1..150),
        allowed_tasks in prop::collection::vec(0u32..6, 1..4),
        allowed_calls in prop::collection::vec(0usize..5, 1..3),
    ) {
        let calls = [
            SyscallNr::Read,
            SyscallNr::Write,
            SyscallNr::Ioctl,
            SyscallNr::Poll,
            SyscallNr::Futex,
        ];
        let (mut hook, reader) = Tracer::create(TracerConfig::default());
        let filter = TraceFilter {
            tasks: Some(allowed_tasks.iter().map(|&t| TaskId(t)).collect()),
            calls: Some(allowed_calls.iter().map(|&c| calls[c]).collect()),
        };
        reader.set_filter(filter.clone());
        let mut expected = 0;
        for (i, &(task, call)) in events.iter().enumerate() {
            hook.on_enter(TaskId(task), calls[call], Time::from_ns(i as u64));
            if filter.matches(TaskId(task), calls[call]) {
                expected += 1;
            }
        }
        let recorded = reader.drain();
        prop_assert_eq!(recorded.len(), expected);
        for e in &recorded {
            prop_assert!(filter.matches(e.task, e.nr));
        }
    }
}
