//! Property-based tests for the decision journal.
//!
//! Three families:
//!
//! * **Thread invariance** — recording the same `(spec, seed)` on 1, 2
//!   and 8 worker threads must yield byte-identical journal *text*: the
//!   canonical event order admits no thread-dependent degree of freedom.
//! * **Replay exactness** — a `Replayer` at any thread count must
//!   reproduce the live run's `summary_csv` byte for byte from the
//!   journal alone (placements and per-epoch decisions pinned).
//! * **Codec round-trip** — `to_text → from_text` is the identity on
//!   journals, and the text form is a fixed point.
//!
//! Each case runs whole (small) fleet simulations, so counts are low.

use proptest::prelude::*;
use selftune_cluster::prelude::*;
use selftune_journal::prelude::*;
use selftune_simcore::time::Dur;

/// A small fleet that exercises every record kind: skewed overload for
/// rebalance migrations, churn for kills, an elastic VM for share grants
/// and compressions.
fn journal_spec(nodes: usize, tasks: usize, pressure: f64, elastic_vm: bool) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new("prop-journal", nodes, tasks, Dur::ms(2_400))
        .with_mix(TaskMix::new(vec![(
            TaskKind::HungryRt {
                nominal_wcet: Dur::ms(2),
                wcet: Dur::ms(6),
                period: Dur::ms(40),
            },
            1.0,
        )]))
        .with_arrivals(ArrivalSchedule::Staggered { gap: Dur::ms(80) })
        .with_churn(Churn {
            mean_lifetime: Dur::ms(1_500),
            min_lifetime: Dur::ms(300),
        })
        .with_policy(PolicyKind::FirstFit)
        .with_ulub(0.9)
        .with_rebalance(RebalanceSpec {
            enabled: true,
            period: Dur::ms(600),
            pressure,
            max_moves: 4,
            ewma_alpha: 0.6,
            warm_start: true,
        });
    if elastic_vm {
        spec = spec.with_vm(
            VmSpec::uniform(
                Dur::ms(3),
                Dur::ms(10),
                2,
                TaskKind::PeriodicRt {
                    wcet: Dur::ms(4),
                    period: Dur::ms(40),
                },
            )
            .with_elastic(),
        );
    }
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn journals_are_byte_identical_at_1_2_and_8_threads(
        seed in 0u64..1_000_000,
        nodes in 3usize..5,
        tasks in 8usize..13,
        elastic_vm in any::<bool>(),
    ) {
        let spec = journal_spec(nodes, tasks, 0.2, elastic_vm);
        let (_, baseline) = Journal::record(1, &spec, seed);
        let text = baseline.to_text();
        for threads in [2usize, 8] {
            let (_, j) = Journal::record(threads, &spec, seed);
            // `threads` is part of the header, so compare the journal with
            // the header normalised to the recording thread count.
            let mut j = j;
            j.threads = 1;
            prop_assert_eq!(&j.to_text(), &text, "journal text at {} threads", threads);
        }
    }

    #[test]
    fn replay_reproduces_live_aggregates_exactly(
        seed in 0u64..1_000_000,
        nodes in 3usize..5,
        tasks in 8usize..13,
        elastic_vm in any::<bool>(),
        replay_threads in 1usize..9,
    ) {
        let spec = journal_spec(nodes, tasks, 0.2, elastic_vm);
        let (live, journal) = Journal::record(2, &spec, seed);
        let replayed = Replayer::new(replay_threads)
            .verify(&journal)
            .expect("replay must be byte-identical");
        prop_assert_eq!(replayed.summary_csv(), live.summary_csv());
    }

    #[test]
    fn codec_round_trip_is_identity(
        seed in 0u64..1_000_000,
        nodes in 2usize..5,
        tasks in 6usize..12,
        pressure in 0.1f64..0.5,
        elastic_vm in any::<bool>(),
    ) {
        let spec = journal_spec(nodes, tasks, pressure, elastic_vm);
        let (_, journal) = Journal::record(2, &spec, seed);
        let text = journal.to_text();
        let parsed = Journal::from_text(&text)
            .unwrap_or_else(|e| panic!("parse failed: {e}"));
        prop_assert_eq!(&parsed, &journal);
        prop_assert_eq!(parsed.to_text(), text);
    }

    #[test]
    fn whatif_from_a_late_cut_preserves_the_pinned_prefix(
        seed in 0u64..1_000_000,
        tasks in 8usize..13,
    ) {
        // Cutting at the journal's end pins everything: the counterfactual
        // must equal the factual exactly, whatever the swap.
        let spec = journal_spec(4, tasks, 0.2, false);
        let (_, journal) = Journal::record(2, &spec, seed);
        let cut = journal.epochs();
        let report = run_whatif(
            &journal,
            &WhatIf { cut_epoch: cut, swap: PolicySwap::DisableRebalance },
            2,
        );
        prop_assert_eq!(report.baseline.summary_csv(), report.variant.summary_csv());
        prop_assert!(report.miss_delta().abs() < 1e-12);
    }
}
