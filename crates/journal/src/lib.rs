//! # selftune-journal
//!
//! Deterministic decision journal and replay/what-if engine for the
//! `selftune` fleet simulation (reproducing *"Self-tuning Schedulers for
//! Legacy Real-Time Applications"*, EuroSys 2010, grown to fleet scale).
//!
//! ## Architecture
//!
//! ```text
//!   ClusterRunner::run_logged ──► FleetEvent stream ──► Journal
//!        (admissions, kills,        (canonical order:     │ to_text /
//!         share grants,              instant, class,      │ from_text
//!         compressions,              tie-break)           ▼
//!         rebalance passes,                          journal file
//!         migrations)                                     │
//!                                                         ▼
//!   Replayer::verify ◄── plan_fleet_pinned + run_pinned ◄─┘
//!        │                (placements + per-epoch moves
//!        │                 substituted from the journal)
//!        ▼
//!   byte-identical summary_csv at any thread count — or a named
//!   divergence; run_whatif swaps ONE policy from a cut epoch instead
//!   and diffs the counterfactual against the exact replay.
//! ```
//!
//! * [`record`] — [`DecisionRecord`] (admissions with minbudget inputs,
//!   share grants with demand signal / hysteresis state / clamp reason,
//!   compressions, rebalance passes with their feedback snapshot and
//!   booking math, migrations, kills) and [`Journal`]: record a run,
//!   extract the pin tables replay feeds back into the runner.
//! * [`codec`] — line-oriented text I/O in the `ScenarioSpec::to_text`
//!   style: `key = value` headers, verbatim scenario and summary blocks,
//!   one record per line with nanosecond-exact instants. Round-trips
//!   exactly; truncated or corrupt input is rejected with a line-level
//!   error.
//! * [`replay`] — [`Replayer`]: re-execute pinned to the journal and
//!   byte-compare aggregates. Divergence detection is a CI property: the
//!   journal is thread-count invariant, so is its replay.
//! * [`whatif`] — [`run_whatif`]: pin history up to a cut epoch, swap one
//!   policy ([`PolicySwap`]: disable rebalancing, change placement,
//!   freeze elastic shares) and quantify the outcome delta.
//!
//! ## Why a journal
//!
//! The fleet's control decisions (admission, elastic share grants,
//! feedback re-placement) are spread across three control loops and any
//! number of worker threads. The journal serialises *why* each decision
//! was taken (the signals it saw) into one canonical stream, makes the
//! whole run reproducible from that stream alone, and turns "what would
//! have happened without the rebalancer?" from a speculation into an
//! exact counterfactual run.
//!
//! ## Example
//!
//! ```
//! use selftune_cluster::prelude::*;
//! use selftune_journal::prelude::*;
//!
//! let spec = ScenarioSpec::skewed_overload_demo(4, 12)
//!     .with_rebalance(ScenarioSpec::demo_rebalance());
//! let (live, journal) = Journal::record(2, &spec, 42);
//!
//! // The text codec round-trips exactly…
//! let reloaded = Journal::from_text(&journal.to_text()).unwrap();
//! assert_eq!(reloaded, journal);
//!
//! // …and replay reproduces the live aggregates byte for byte.
//! let replayed = Replayer::new(8).verify(&reloaded).unwrap();
//! assert_eq!(replayed.summary_csv(), live.summary_csv());
//!
//! // What if the rebalancer had been off?
//! let report = run_whatif(
//!     &journal,
//!     &WhatIf { cut_epoch: 0, swap: PolicySwap::DisableRebalance },
//!     2,
//! );
//! assert!(report.variant.rebalance.moves == 0);
//! ```

pub mod codec;
pub mod record;
pub mod replay;
pub mod whatif;

pub use codec::{record_from_line, record_line, FORMAT_VERSION};
pub use record::{sort_records, DecisionRecord, Journal};
pub use replay::Replayer;
pub use whatif::{run_whatif, variant_spec, PolicySwap, WhatIf, WhatIfReport};

/// One-stop imports for journal recording, replay and what-if queries.
pub mod prelude {
    pub use crate::codec::{record_from_line, record_line, FORMAT_VERSION};
    pub use crate::record::{sort_records, DecisionRecord, Journal};
    pub use crate::replay::Replayer;
    pub use crate::whatif::{run_whatif, variant_spec, PolicySwap, WhatIf, WhatIfReport};
}
