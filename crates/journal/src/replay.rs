//! Exact journal replay: re-execute a recorded run pinned to its own
//! decisions and assert the aggregates come back byte for byte.

use selftune_cluster::runner::plan_fleet_pinned;
use selftune_cluster::{AggregateMetrics, ClusterRunner};

use crate::record::Journal;

/// Re-executes journalled runs with every decision pinned to the record.
///
/// The replay thread count is independent of the recording one — the
/// divergence property the CI job enforces is exactly that replaying on
/// 1, 2 or 8 threads reproduces the recorded `summary_csv` byte for byte.
#[derive(Clone, Copy, Debug)]
pub struct Replayer {
    threads: usize,
}

impl Replayer {
    /// A replayer using `threads` worker threads.
    pub fn new(threads: usize) -> Replayer {
        Replayer {
            threads: threads.max(1),
        }
    }

    /// Re-executes the journalled scenario pinned to the journal's
    /// placements and per-epoch migration decisions.
    pub fn replay(&self, journal: &Journal) -> AggregateMetrics {
        let plan = plan_fleet_pinned(&journal.scenario, journal.seed, &journal.pinned_plan());
        ClusterRunner::new(self.threads).run_pinned(
            &journal.scenario,
            journal.seed,
            &plan,
            &journal.pinned_moves(None),
        )
    }

    /// Replays and byte-compares the aggregates against the recorded
    /// summary.
    ///
    /// # Errors
    ///
    /// On divergence, names the first differing summary line — the replay
    /// contract is byte identity, so *any* difference is a bug in either
    /// the journal or the simulation's determinism.
    pub fn verify(&self, journal: &Journal) -> Result<AggregateMetrics, String> {
        let metrics = self.replay(journal);
        let replayed = metrics.summary_csv();
        if replayed == journal.summary {
            return Ok(metrics);
        }
        let diverged = journal
            .summary
            .lines()
            .zip(replayed.lines())
            .enumerate()
            .find(|(_, (a, b))| a != b);
        Err(match diverged {
            Some((i, (rec, rep))) => format!(
                "replay diverged at summary line {}: recorded {rec:?}, replayed {rep:?}",
                i + 1
            ),
            None => format!(
                "replay diverged in summary length: recorded {} lines, replayed {}",
                journal.summary.lines().count(),
                replayed.lines().count()
            ),
        })
    }
}
