//! Line-oriented journal text I/O, in the same `key = value` style as
//! [`ScenarioSpec::to_text`].
//!
//! ```text
//! # selftune decision journal
//! version = 1
//! seed = 42
//! threads = 2
//! admission = 10 2 0 3 1 0
//! scenario_begin
//! # selftune fleet scenario
//! name = rebalance-demo
//! ...
//! scenario_end
//! summary_begin
//! scenario,rebalance-demo
//! ...
//! summary_end
//! vm_admission = at=0 id=0 demand=0.3 node=1 retries=0 spare=0
//! task_admission = at=100000000 id=0 demand=0.0825 node=0 retries=0 spare=0
//! kill = at=1200000000 node=0 id=7
//! share_grant = at=250000000 node=1 vm=0 demand=0.21 target=0.26 granted=0.26 compressed=0 clamp=none pending=- avail=0.9
//! compression = at=750000000 epoch=0 node=0 count=3
//! node_rebound = at=750000000 epoch=0 node=0 prev=0.9 bound=0.95 demand=0.97 reserved=0.88 miss_rate=0.2 compressions=4
//! rebalance = at=750000000 epoch=0 moves=1 failed=0 snap=0:0.31:0.97,1:0.02:0.41
//! migration = at=750000000 epoch=0 seq=0 id=4 vm=0 from=0 to=1 demand=0.14 dest=0.55 warm=2000000:40000000 guest_warm=-
//! ```
//!
//! Instants and durations are written as whole nanoseconds (exact),
//! floats with the shortest round-tripping decimal form, and absent
//! values as `-`. The embedded scenario and summary blocks are verbatim;
//! everything round-trips exactly: `to_text(from_text(t)) == t` for any
//! `t` produced by [`Journal::to_text`] — a property test enforces it.

use selftune_cluster::node::WarmStart;
use selftune_cluster::{NodeSnap, ScenarioSpec};
use selftune_core::share::ClampReason;
use selftune_simcore::time::{Dur, Time};

use crate::record::{DecisionRecord, Journal};

/// The journal format version this crate writes and understands.
pub const FORMAT_VERSION: u32 = 1;

fn opt_node(n: Option<usize>) -> String {
    match n {
        Some(n) => n.to_string(),
        None => "-".to_owned(),
    }
}

fn warm_body(w: &WarmStart) -> String {
    format!("{}:{}", w.budget.as_ns(), w.period.as_ns())
}

/// Serialises one decision record to its single-line text form — the same
/// line [`Journal::to_text`] writes. Public so the log-shipping layer can
/// frame individual records without materialising a whole journal.
pub fn record_line(r: &DecisionRecord) -> String {
    match r {
        DecisionRecord::TaskAdmission {
            at,
            fleet_id,
            demand,
            node,
            retries,
            best_spare,
        } => format!(
            "task_admission = at={} id={fleet_id} demand={demand} node={} retries={retries} spare={best_spare}",
            at.as_ns(),
            opt_node(*node),
        ),
        DecisionRecord::VmAdmission {
            at,
            fleet_vm_id,
            demand,
            node,
            retries,
            best_spare,
        } => format!(
            "vm_admission = at={} id={fleet_vm_id} demand={demand} node={} retries={retries} spare={best_spare}",
            at.as_ns(),
            opt_node(*node),
        ),
        DecisionRecord::Kill { at, node, fleet_id } => {
            format!("kill = at={} node={node} id={fleet_id}", at.as_ns())
        }
        DecisionRecord::ShareGrant {
            at,
            node,
            fleet_vm_id,
            demand,
            target,
            granted,
            compressed,
            clamp,
            pending,
            available,
        } => format!(
            "share_grant = at={} node={node} vm={fleet_vm_id} demand={demand} target={target} \
             granted={granted} compressed={} clamp={} pending={} avail={available}",
            at.as_ns(),
            u8::from(*compressed),
            clamp.name(),
            match pending {
                Some((share, count)) => format!("{share}:{count}"),
                None => "-".to_owned(),
            },
        ),
        DecisionRecord::NodeRebound {
            at,
            epoch,
            node,
            prev,
            bound,
            demand,
            reserved,
            miss_rate,
            compressions,
        } => format!(
            "node_rebound = at={} epoch={epoch} node={node} prev={prev} bound={bound} \
             demand={demand} reserved={reserved} miss_rate={miss_rate} compressions={compressions}",
            at.as_ns()
        ),
        DecisionRecord::Compression {
            at,
            epoch,
            node,
            count,
        } => format!(
            "compression = at={} epoch={epoch} node={node} count={count}",
            at.as_ns()
        ),
        DecisionRecord::Rebalance {
            at,
            epoch,
            snapshot,
            moves,
            failed,
        } => {
            let snap = if snapshot.is_empty() {
                "-".to_owned()
            } else {
                snapshot
                    .iter()
                    .map(|s| format!("{}:{}:{}", s.node, s.pressure, s.utilisation))
                    .collect::<Vec<_>>()
                    .join(",")
            };
            format!(
                "rebalance = at={} epoch={epoch} moves={moves} failed={failed} snap={snap}",
                at.as_ns()
            )
        }
        DecisionRecord::Migration {
            at,
            epoch,
            seq,
            fleet_id,
            vm,
            from,
            to,
            demand,
            dest_reserved_after,
            warm,
            guest_warm,
        } => {
            let gw = if guest_warm.is_empty() {
                "-".to_owned()
            } else {
                guest_warm
                    .iter()
                    .map(|(id, w)| format!("{id}:{}", warm_body(w)))
                    .collect::<Vec<_>>()
                    .join(";")
            };
            format!(
                "migration = at={} epoch={epoch} seq={seq} id={fleet_id} vm={} from={from} to={to} \
                 demand={demand} dest={dest_reserved_after} warm={} guest_warm={gw}",
                at.as_ns(),
                u8::from(*vm),
                match warm {
                    Some(w) => warm_body(w),
                    None => "-".to_owned(),
                },
            )
        }
    }
}

/// Field accessor over one record line's `k=v` tokens: every field must
/// be consumed exactly once and in any order.
struct Fields<'a> {
    line: &'a str,
    pairs: Vec<(&'a str, &'a str)>,
}

impl<'a> Fields<'a> {
    fn parse(line: &'a str, body: &'a str) -> Result<Fields<'a>, String> {
        let mut pairs = Vec::new();
        for tok in body.split_whitespace() {
            let (k, v) = tok
                .split_once('=')
                .ok_or_else(|| format!("expected `field=value`, got {tok:?} in {line:?}"))?;
            pairs.push((k, v));
        }
        Ok(Fields { line, pairs })
    }

    fn take(&mut self, key: &str) -> Result<&'a str, String> {
        let i = self
            .pairs
            .iter()
            .position(|&(k, _)| k == key)
            .ok_or_else(|| format!("missing field `{key}` in {:?}", self.line))?;
        Ok(self.pairs.swap_remove(i).1)
    }

    fn finish(self) -> Result<(), String> {
        match self.pairs.first() {
            None => Ok(()),
            Some((k, _)) => Err(format!("unknown field `{k}` in {:?}", self.line)),
        }
    }
}

fn parse_u64(s: &str, what: &str) -> Result<u64, String> {
    s.parse().map_err(|_| format!("bad {what}: {s:?}"))
}

fn parse_usize(s: &str, what: &str) -> Result<usize, String> {
    s.parse().map_err(|_| format!("bad {what}: {s:?}"))
}

fn parse_f64(s: &str, what: &str) -> Result<f64, String> {
    let v: f64 = s.parse().map_err(|_| format!("bad {what}: {s:?}"))?;
    if !v.is_finite() {
        return Err(format!("bad {what}: {s:?}"));
    }
    Ok(v)
}

fn parse_at(s: &str) -> Result<Time, String> {
    Ok(Time::from_ns(parse_u64(s, "instant (ns)")?))
}

fn parse_opt_node(s: &str) -> Result<Option<usize>, String> {
    if s == "-" {
        Ok(None)
    } else {
        Ok(Some(parse_usize(s, "node")?))
    }
}

fn parse_bool01(s: &str, what: &str) -> Result<bool, String> {
    match s {
        "0" => Ok(false),
        "1" => Ok(true),
        _ => Err(format!("bad {what} (want 0/1): {s:?}")),
    }
}

fn parse_warm_body(s: &str) -> Result<WarmStart, String> {
    let (b, p) = s
        .split_once(':')
        .ok_or_else(|| format!("bad warm grant (want budget_ns:period_ns): {s:?}"))?;
    Ok(WarmStart {
        budget: Dur::ns(parse_u64(b, "warm budget (ns)")?),
        period: Dur::ns(parse_u64(p, "warm period (ns)")?),
    })
}

/// Parses one decision record from its single-line text form (the inverse
/// of [`record_line`]).
///
/// # Errors
///
/// Names the first offence: unknown kinds, missing/duplicate/extra
/// fields, malformed values — nothing is silently defaulted.
pub fn record_from_line(line: &str) -> Result<DecisionRecord, String> {
    let (kind, body) = line
        .split_once('=')
        .ok_or_else(|| format!("expected `key = value`, got {line:?}"))?;
    let (kind, body) = (kind.trim(), body.trim());
    let mut f = Fields::parse(line, body)?;
    let rec = match kind {
        "task_admission" => DecisionRecord::TaskAdmission {
            at: parse_at(f.take("at")?)?,
            fleet_id: parse_usize(f.take("id")?, "task id")?,
            demand: parse_f64(f.take("demand")?, "demand")?,
            node: parse_opt_node(f.take("node")?)?,
            retries: f
                .take("retries")?
                .parse()
                .map_err(|_| format!("bad retries in {line:?}"))?,
            best_spare: parse_f64(f.take("spare")?, "spare")?,
        },
        "vm_admission" => DecisionRecord::VmAdmission {
            at: parse_at(f.take("at")?)?,
            fleet_vm_id: parse_usize(f.take("id")?, "vm id")?,
            demand: parse_f64(f.take("demand")?, "demand")?,
            node: parse_opt_node(f.take("node")?)?,
            retries: f
                .take("retries")?
                .parse()
                .map_err(|_| format!("bad retries in {line:?}"))?,
            best_spare: parse_f64(f.take("spare")?, "spare")?,
        },
        "kill" => DecisionRecord::Kill {
            at: parse_at(f.take("at")?)?,
            node: parse_usize(f.take("node")?, "node")?,
            fleet_id: parse_usize(f.take("id")?, "task id")?,
        },
        "share_grant" => DecisionRecord::ShareGrant {
            at: parse_at(f.take("at")?)?,
            node: parse_usize(f.take("node")?, "node")?,
            fleet_vm_id: parse_usize(f.take("vm")?, "vm id")?,
            demand: parse_f64(f.take("demand")?, "demand")?,
            target: parse_f64(f.take("target")?, "target")?,
            granted: parse_f64(f.take("granted")?, "granted")?,
            compressed: parse_bool01(f.take("compressed")?, "compressed")?,
            clamp: {
                let s = f.take("clamp")?;
                ClampReason::from_name(s).ok_or_else(|| format!("unknown clamp reason: {s:?}"))?
            },
            pending: {
                let s = f.take("pending")?;
                if s == "-" {
                    None
                } else {
                    let (share, count) = s
                        .split_once(':')
                        .ok_or_else(|| format!("bad pending (want share:count): {s:?}"))?;
                    Some((
                        parse_f64(share, "pending share")?,
                        count
                            .parse()
                            .map_err(|_| format!("bad pending count: {count:?}"))?,
                    ))
                }
            },
            available: parse_f64(f.take("avail")?, "avail")?,
        },
        "node_rebound" => DecisionRecord::NodeRebound {
            at: parse_at(f.take("at")?)?,
            epoch: parse_usize(f.take("epoch")?, "epoch")?,
            node: parse_usize(f.take("node")?, "node")?,
            prev: parse_f64(f.take("prev")?, "prev bound")?,
            bound: parse_f64(f.take("bound")?, "bound")?,
            demand: parse_f64(f.take("demand")?, "demand")?,
            reserved: parse_f64(f.take("reserved")?, "reserved")?,
            miss_rate: parse_f64(f.take("miss_rate")?, "miss rate")?,
            compressions: parse_u64(f.take("compressions")?, "compressions")?,
        },
        "compression" => DecisionRecord::Compression {
            at: parse_at(f.take("at")?)?,
            epoch: parse_usize(f.take("epoch")?, "epoch")?,
            node: parse_usize(f.take("node")?, "node")?,
            count: parse_u64(f.take("count")?, "count")?,
        },
        "rebalance" => DecisionRecord::Rebalance {
            at: parse_at(f.take("at")?)?,
            epoch: parse_usize(f.take("epoch")?, "epoch")?,
            moves: parse_u64(f.take("moves")?, "moves")?,
            failed: parse_u64(f.take("failed")?, "failed")?,
            snapshot: {
                let s = f.take("snap")?;
                if s == "-" {
                    Vec::new()
                } else {
                    s.split(',')
                        .map(|entry| {
                            let parts: Vec<&str> = entry.split(':').collect();
                            let [node, pressure, utilisation] = parts.as_slice() else {
                                return Err(format!(
                                    "bad snapshot entry (want node:pressure:util): {entry:?}"
                                ));
                            };
                            Ok(NodeSnap {
                                node: parse_usize(node, "snapshot node")?,
                                pressure: parse_f64(pressure, "snapshot pressure")?,
                                utilisation: parse_f64(utilisation, "snapshot utilisation")?,
                            })
                        })
                        .collect::<Result<Vec<_>, String>>()?
                }
            },
        },
        "migration" => DecisionRecord::Migration {
            at: parse_at(f.take("at")?)?,
            epoch: parse_usize(f.take("epoch")?, "epoch")?,
            seq: f
                .take("seq")?
                .parse()
                .map_err(|_| format!("bad seq in {line:?}"))?,
            fleet_id: parse_usize(f.take("id")?, "unit id")?,
            vm: parse_bool01(f.take("vm")?, "vm flag")?,
            from: parse_usize(f.take("from")?, "source node")?,
            to: parse_usize(f.take("to")?, "destination node")?,
            demand: parse_f64(f.take("demand")?, "demand")?,
            dest_reserved_after: parse_f64(f.take("dest")?, "dest booking")?,
            warm: {
                let s = f.take("warm")?;
                if s == "-" {
                    None
                } else {
                    Some(parse_warm_body(s)?)
                }
            },
            guest_warm: {
                let s = f.take("guest_warm")?;
                if s == "-" {
                    Vec::new()
                } else {
                    s.split(';')
                        .map(|entry| {
                            let (id, grant) = entry.split_once(':').ok_or_else(|| {
                                format!("bad guest warm entry (want id:budget:period): {entry:?}")
                            })?;
                            Ok((parse_usize(id, "guest id")?, parse_warm_body(grant)?))
                        })
                        .collect::<Result<Vec<_>, String>>()?
                }
            },
        },
        other => return Err(format!("unknown record kind: {other:?}")),
    };
    f.finish()?;
    Ok(rec)
}

impl Journal {
    /// Serialises the journal to the line-oriented text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("# selftune decision journal\n");
        out.push_str(&format!("version = {FORMAT_VERSION}\n"));
        out.push_str(&format!("seed = {}\n", self.seed));
        out.push_str(&format!("threads = {}\n", self.threads));
        out.push_str(&format!(
            "admission = {} {} {} {} {} {}\n",
            self.admission.admitted,
            self.admission.rejected,
            self.admission.best_effort,
            self.admission.migrations,
            self.admission.vms_admitted,
            self.admission.vms_rejected,
        ));
        out.push_str("scenario_begin\n");
        out.push_str(&self.scenario.to_text());
        out.push_str("scenario_end\n");
        out.push_str("summary_begin\n");
        out.push_str(&self.summary);
        if !self.summary.ends_with('\n') {
            out.push('\n');
        }
        out.push_str("summary_end\n");
        for r in &self.records {
            out.push_str(&record_line(r));
            out.push('\n');
        }
        out
    }

    /// Parses a journal from the text written by [`Journal::to_text`].
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first offending line:
    /// unknown keys or record kinds, malformed fields, unterminated
    /// scenario/summary blocks, and missing required headers are all
    /// rejected rather than silently defaulted — a truncated journal must
    /// never replay as if it were complete.
    pub fn from_text(text: &str) -> Result<Journal, String> {
        let mut seed: Option<u64> = None;
        let mut threads: Option<usize> = None;
        let mut admission: Option<selftune_cluster::AdmissionStats> = None;
        let mut scenario: Option<ScenarioSpec> = None;
        let mut summary: Option<String> = None;
        let mut records: Vec<DecisionRecord> = Vec::new();
        let mut version_seen = false;

        let mut lines = text.lines();
        while let Some(raw) = lines.next() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            match line {
                "scenario_begin" => {
                    let mut block = String::new();
                    let mut closed = false;
                    for inner in lines.by_ref() {
                        if inner.trim() == "scenario_end" {
                            closed = true;
                            break;
                        }
                        block.push_str(inner);
                        block.push('\n');
                    }
                    if !closed {
                        return Err("unterminated scenario block (missing `scenario_end`)".into());
                    }
                    scenario = Some(ScenarioSpec::from_text(&block)?);
                    continue;
                }
                "summary_begin" => {
                    let mut block = String::new();
                    let mut closed = false;
                    for inner in lines.by_ref() {
                        if inner.trim() == "summary_end" {
                            closed = true;
                            break;
                        }
                        block.push_str(inner);
                        block.push('\n');
                    }
                    if !closed {
                        return Err("unterminated summary block (missing `summary_end`)".into());
                    }
                    summary = Some(block);
                    continue;
                }
                _ => {}
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("expected `key = value`, got {line:?}"))?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "version" => {
                    let v: u32 = value
                        .parse()
                        .map_err(|_| format!("bad version: {value:?}"))?;
                    if v != FORMAT_VERSION {
                        return Err(format!(
                            "unsupported journal version {v} (this build reads {FORMAT_VERSION})"
                        ));
                    }
                    version_seen = true;
                }
                "seed" => seed = Some(parse_u64(value, "seed")?),
                "threads" => threads = Some(parse_usize(value, "threads")?),
                "admission" => {
                    let parts: Vec<&str> = value.split_whitespace().collect();
                    let [adm, rej, be, mig, vadm, vrej] = parts.as_slice() else {
                        return Err(format!("admission needs 6 fields: {value:?}"));
                    };
                    admission = Some(selftune_cluster::AdmissionStats {
                        admitted: parse_u64(adm, "admitted")?,
                        rejected: parse_u64(rej, "rejected")?,
                        best_effort: parse_u64(be, "best_effort")?,
                        migrations: parse_u64(mig, "migrations")?,
                        vms_admitted: parse_u64(vadm, "vms_admitted")?,
                        vms_rejected: parse_u64(vrej, "vms_rejected")?,
                    });
                }
                _ => records.push(record_from_line(line)?),
            }
        }

        if !version_seen {
            return Err("missing required key `version`".into());
        }
        Ok(Journal {
            scenario: scenario.ok_or("missing scenario block")?,
            seed: seed.ok_or("missing required key `seed`")?,
            threads: threads.ok_or("missing required key `threads`")?,
            admission: admission.ok_or("missing required key `admission`")?,
            summary: summary.ok_or("missing summary block")?,
            records,
        })
    }
}

#[cfg(test)]
mod tests {
    use selftune_cluster::ScenarioSpec;

    use crate::record::Journal;

    fn demo_journal() -> Journal {
        let spec =
            ScenarioSpec::skewed_overload_demo(3, 9).with_rebalance(ScenarioSpec::demo_rebalance());
        Journal::record(2, &spec, 7).1
    }

    #[test]
    fn text_round_trip_is_exact() {
        let journal = demo_journal();
        let text = journal.to_text();
        let parsed = Journal::from_text(&text).expect("parse");
        assert_eq!(parsed, journal);
        // The canonical form is a fixed point of the round trip.
        assert_eq!(parsed.to_text(), text);
        assert!(
            journal.records.len() > 9,
            "demo journal should hold admissions + epoch records, got {}",
            journal.records.len()
        );
    }

    #[test]
    fn truncation_anywhere_is_rejected_or_parses_strictly_fewer_records() {
        // Cutting the journal off at any line boundary must never produce
        // a journal that silently claims to be the full run.
        let journal = demo_journal();
        let text = journal.to_text();
        let lines: Vec<&str> = text.lines().collect();
        for keep in 0..lines.len() {
            let cut: String = lines[..keep].iter().map(|l| format!("{l}\n")).collect();
            match Journal::from_text(&cut) {
                Err(_) => {}
                Ok(parsed) => {
                    assert!(
                        parsed.records.len() < journal.records.len(),
                        "truncated at line {keep} but parsed as complete"
                    );
                }
            }
        }
    }

    #[test]
    fn corrupt_lines_are_rejected_with_an_error() {
        let valid = demo_journal().to_text();
        let corruptions: &[(&str, &str)] = &[
            // Bad header values.
            ("version = 1", "version = 99"),
            ("version = 1", "version = one"),
            ("seed = 7", "seed = -1"),
            ("threads = 2", "threads = two"),
            // Admission header must keep its 6 counters.
            ("admission = ", "admission = 1 2 3\n# was: "),
            // Unterminated embedded blocks.
            ("scenario_end", "# scenario_end"),
            ("summary_end", "# summary_end"),
        ];
        for (from, to) in corruptions {
            assert!(
                valid.contains(from),
                "corruption template {from:?} not present in journal text"
            );
            let corrupt = valid.replacen(from, to, 1);
            assert!(
                Journal::from_text(&corrupt).is_err(),
                "accepted corrupt journal ({from:?} -> {to:?})"
            );
        }
        // Field-level corruption of record lines.
        for bad in [
            "task_admission = at=0 id=0 demand=0.1 node=0 retries=0",  // missing field
            "task_admission = at=0 id=0 demand=0.1 node=0 retries=0 spare=0 extra=1",
            "task_admission = at=zero id=0 demand=0.1 node=0 retries=0 spare=0",
            "task_admission = at=0 id=0 demand=nan node=0 retries=0 spare=0",
            "share_grant = at=0 node=0 vm=0 demand=0.1 target=0.1 granted=0.1 compressed=2 clamp=none pending=- avail=0.9",
            "share_grant = at=0 node=0 vm=0 demand=0.1 target=0.1 granted=0.1 compressed=0 clamp=squeeze pending=- avail=0.9",
            "share_grant = at=0 node=0 vm=0 demand=0.1 target=0.1 granted=0.1 compressed=0 clamp=none pending=0.2 avail=0.9",
            "node_rebound = at=0 epoch=0 node=0 prev=0.9 bound=0.95 demand=0.97 reserved=0.88 miss_rate=0.2", // missing field
            "node_rebound = at=0 epoch=0 node=0 prev=0.9 bound=inf demand=0.97 reserved=0.88 miss_rate=0.2 compressions=4",
            "rebalance = at=0 epoch=0 moves=0 failed=0 snap=0:0.1",    // short snap entry
            "migration = at=0 epoch=0 seq=0 id=0 vm=3 from=0 to=1 demand=0.1 dest=0.1 warm=- guest_warm=-",
            "migration = at=0 epoch=0 seq=0 id=0 vm=0 from=0 to=1 demand=0.1 dest=0.1 warm=12 guest_warm=-",
            "teleport = at=0 id=0",                                    // unknown kind
            "just some words",
        ] {
            let corrupt = format!("{valid}{bad}\n");
            assert!(
                Journal::from_text(&corrupt).is_err(),
                "accepted corrupt record line: {bad:?}"
            );
        }
    }

    #[test]
    fn composed_plane_journal_is_thread_invariant_and_replays() {
        // Diurnal wave + flash crowd with every control level on: elastic
        // VMs, node re-bounding and the rebalancer. The journal text must
        // be byte-identical at 1, 2 and 8 worker threads (modulo the
        // informational `threads` header), must round-trip, and its replay
        // must reproduce the recorded aggregates byte for byte.
        let mut spec = ScenarioSpec::diurnal_demo(4, 8)
            .with_rebalance(ScenarioSpec::diurnal_rebalance())
            .with_node_share(ScenarioSpec::diurnal_node_share());
        for vm in &mut spec.vms {
            vm.elastic = true;
        }
        let mut texts = Vec::new();
        let mut summaries = Vec::new();
        for threads in [1usize, 2, 8] {
            let (live, mut journal) = Journal::record(threads, &spec, 42);
            journal.threads = 1; // the only field allowed to differ
            texts.push(journal.to_text());
            summaries.push(live.summary_csv());
        }
        assert_eq!(texts[0], texts[1], "journal text differs at 2 threads");
        assert_eq!(texts[0], texts[2], "journal text differs at 8 threads");
        assert_eq!(summaries[0], summaries[1]);
        assert_eq!(summaries[0], summaries[2]);
        assert!(
            texts[0].contains("node_rebound = "),
            "composed run should re-bound at least one node"
        );
        let reloaded = Journal::from_text(&texts[0]).expect("round trip");
        let replayed = crate::replay::Replayer::new(2)
            .verify(&reloaded)
            .expect("replay matches the recorded aggregates");
        assert_eq!(replayed.summary_csv(), summaries[0]);
    }

    #[test]
    fn missing_headers_are_rejected() {
        let valid = demo_journal().to_text();
        for key in ["version", "seed", "threads", "admission"] {
            let broken: String = valid
                .lines()
                .filter(|l| !l.starts_with(key))
                .map(|l| format!("{l}\n"))
                .collect();
            assert!(
                Journal::from_text(&broken).is_err(),
                "accepted journal without `{key}` header"
            );
        }
    }
}
