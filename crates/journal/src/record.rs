//! The journal itself: decision records, recording, and the pin tables
//! replay feeds back into the runner.

use selftune_cluster::events::FleetEvent;
use selftune_cluster::node::WarmStart;
use selftune_cluster::placer::Migration;
use selftune_cluster::runner::{EpochDecision, PinnedMoves, PinnedPlan};
use selftune_cluster::{AdmissionStats, AggregateMetrics, ClusterRunner, NodeSnap, ScenarioSpec};
use selftune_core::share::ClampReason;
use selftune_simcore::time::Time;

/// One journalled fleet decision, with the inputs that pinned it.
///
/// Mirrors [`FleetEvent`] field for field — the journal keeps its own
/// enum so the on-disk schema is owned here, decoupled from the runner's
/// in-memory event type.
#[derive(Clone, Debug, PartialEq)]
pub enum DecisionRecord {
    /// A real-time task's admission decision (accept/reject) with the
    /// minbudget inputs.
    TaskAdmission {
        /// Arrival instant the booking is dated at.
        at: Time,
        /// Fleet task id.
        fleet_id: usize,
        /// The minbudget demand booked (headroom included).
        demand: f64,
        /// Destination node; `None` = rejected.
        node: Option<usize>,
        /// Release-retry passes the placement needed.
        retries: u32,
        /// Largest spare any node could offer (rejection witness).
        best_spare: f64,
    },
    /// A virtual platform's admission decision.
    VmAdmission {
        /// Admission instant (t = 0).
        at: Time,
        /// Fleet VM id.
        fleet_vm_id: usize,
        /// The share booked.
        demand: f64,
        /// Destination node; `None` = rejected.
        node: Option<usize>,
        /// Release-retry passes the placement needed.
        retries: u32,
        /// Largest spare any node could offer.
        best_spare: f64,
    },
    /// A churned task's lease expiry.
    Kill {
        /// Departure instant.
        at: Time,
        /// Node the task was placed on.
        node: usize,
        /// Fleet task id.
        fleet_id: usize,
    },
    /// One executed elastic share re-grant: demand signal, hysteresis
    /// state, clamp reason and the host supervisor's arithmetic.
    ShareGrant {
        /// When the control step ran.
        at: Time,
        /// Node hosting the VM.
        node: usize,
        /// Fleet VM id.
        fleet_vm_id: usize,
        /// Smoothed demand estimate behind the request.
        demand: f64,
        /// The hysteresis-adopted target requested.
        target: f64,
        /// The share the host supervisor granted.
        granted: f64,
        /// Whether the supervisor curbed the request.
        compressed: bool,
        /// Which controller bound clipped the candidate.
        clamp: ClampReason,
        /// Unconfirmed hysteresis change after the step, if any.
        pending: Option<(f64, u32)>,
        /// Host bandwidth the request competed for.
        available: f64,
    },
    /// One node-level supervisor re-bound decided from fleet feedback.
    NodeRebound {
        /// Epoch boundary the decision ran at.
        at: Time,
        /// Rebalance epoch index.
        epoch: usize,
        /// The re-bounded node.
        node: usize,
        /// The bound in force before.
        prev: f64,
        /// The bound now in force.
        bound: f64,
        /// The controller's smoothed demand estimate.
        demand: f64,
        /// Host bandwidth the node's reservations held at the snapshot.
        reserved: f64,
        /// The node's deadline-miss rate over the epoch.
        miss_rate: f64,
        /// Supervisor compressions on the node over the epoch.
        compressions: u64,
    },
    /// One node's supervisor compressions over one epoch.
    Compression {
        /// Epoch boundary the count was sampled at.
        at: Time,
        /// Rebalance epoch index.
        epoch: usize,
        /// The node.
        node: usize,
        /// Compressions during the epoch.
        count: u64,
    },
    /// One rebalance decision pass with its feedback snapshot.
    Rebalance {
        /// Epoch boundary the pass ran at.
        at: Time,
        /// Rebalance epoch index.
        epoch: usize,
        /// Smoothed pressure / utilisation per node, node-id order.
        snapshot: Vec<NodeSnap>,
        /// Moves planned.
        moves: u64,
        /// Victims with no admissible destination.
        failed: u64,
    },
    /// One planned migration, with the destination booking math.
    Migration {
        /// Epoch boundary the move executes at.
        at: Time,
        /// Rebalance epoch index.
        epoch: usize,
        /// Position in the epoch's decision order.
        seq: u32,
        /// Fleet task id (or fleet VM id when `vm`).
        fleet_id: usize,
        /// Whether a whole virtual platform moved.
        vm: bool,
        /// Source node.
        from: usize,
        /// Destination node.
        to: usize,
        /// What the pass booked on the destination.
        demand: f64,
        /// Destination booking right after this move.
        dest_reserved_after: f64,
        /// Warm-start hand-over for a task victim.
        warm: Option<WarmStart>,
        /// Warm-start hand-overs for a VM victim's guests, by fleet id.
        guest_warm: Vec<(usize, WarmStart)>,
    },
}

impl DecisionRecord {
    /// The instant the decision is dated at.
    pub fn at(&self) -> Time {
        match self {
            DecisionRecord::TaskAdmission { at, .. }
            | DecisionRecord::VmAdmission { at, .. }
            | DecisionRecord::Kill { at, .. }
            | DecisionRecord::ShareGrant { at, .. }
            | DecisionRecord::NodeRebound { at, .. }
            | DecisionRecord::Compression { at, .. }
            | DecisionRecord::Rebalance { at, .. }
            | DecisionRecord::Migration { at, .. } => *at,
        }
    }

    /// Class rank at equal instants — mirrors `FleetEvent`'s canonical
    /// class order exactly (admissions, kills, epoch bookkeeping, grants).
    fn class(&self) -> u8 {
        match self {
            DecisionRecord::VmAdmission { .. } => 0,
            DecisionRecord::TaskAdmission { .. } => 1,
            DecisionRecord::Kill { .. } => 2,
            DecisionRecord::Compression { .. } => 3,
            DecisionRecord::NodeRebound { .. } => 4,
            DecisionRecord::Rebalance { .. } => 5,
            DecisionRecord::Migration { .. } => 6,
            DecisionRecord::ShareGrant { .. } => 7,
        }
    }

    /// Tie-break inside one class at one instant — mirrors `FleetEvent`.
    fn tie(&self) -> (usize, usize) {
        match self {
            DecisionRecord::TaskAdmission { fleet_id, node, .. } => {
                (node.unwrap_or(usize::MAX), *fleet_id)
            }
            DecisionRecord::VmAdmission {
                fleet_vm_id, node, ..
            } => (node.unwrap_or(usize::MAX), *fleet_vm_id),
            DecisionRecord::Kill { node, fleet_id, .. } => (*node, *fleet_id),
            DecisionRecord::ShareGrant {
                node, fleet_vm_id, ..
            } => (*node, *fleet_vm_id),
            DecisionRecord::Compression { node, .. } => (*node, 0),
            DecisionRecord::NodeRebound { node, .. } => (*node, 0),
            DecisionRecord::Rebalance { epoch, .. } => (*epoch, 0),
            DecisionRecord::Migration { epoch, seq, .. } => (*epoch, *seq as usize),
        }
    }
}

/// Sorts records into the journal's canonical `(instant, class, tie)`
/// order — the record-side mirror of `selftune_cluster::sort_events`. A
/// follower that accumulates per-epoch record batches re-sorts through
/// this before comparing bytes against the leader's journal, so batch
/// concatenation order can never masquerade as divergence.
pub fn sort_records(records: &mut [DecisionRecord]) {
    records.sort_by(|a, b| {
        (a.at(), a.class(), a.tie())
            .partial_cmp(&(b.at(), b.class(), b.tie()))
            .expect("total record order")
    });
}

impl From<FleetEvent> for DecisionRecord {
    fn from(e: FleetEvent) -> DecisionRecord {
        match e {
            FleetEvent::TaskAdmission {
                at,
                fleet_id,
                demand,
                node,
                retries,
                best_spare,
            } => DecisionRecord::TaskAdmission {
                at,
                fleet_id,
                demand,
                node,
                retries,
                best_spare,
            },
            FleetEvent::VmAdmission {
                at,
                fleet_vm_id,
                demand,
                node,
                retries,
                best_spare,
            } => DecisionRecord::VmAdmission {
                at,
                fleet_vm_id,
                demand,
                node,
                retries,
                best_spare,
            },
            FleetEvent::Kill { at, node, fleet_id } => DecisionRecord::Kill { at, node, fleet_id },
            FleetEvent::ShareGrant {
                at,
                node,
                fleet_vm_id,
                demand,
                target,
                granted,
                compressed,
                clamp,
                pending,
                available,
            } => DecisionRecord::ShareGrant {
                at,
                node,
                fleet_vm_id,
                demand,
                target,
                granted,
                compressed,
                clamp,
                pending,
                available,
            },
            FleetEvent::NodeRebound {
                at,
                epoch,
                node,
                prev,
                bound,
                demand,
                reserved,
                miss_rate,
                compressions,
            } => DecisionRecord::NodeRebound {
                at,
                epoch,
                node,
                prev,
                bound,
                demand,
                reserved,
                miss_rate,
                compressions,
            },
            FleetEvent::Compression {
                at,
                epoch,
                node,
                count,
            } => DecisionRecord::Compression {
                at,
                epoch,
                node,
                count,
            },
            FleetEvent::Rebalance {
                at,
                epoch,
                snapshot,
                moves,
                failed,
            } => DecisionRecord::Rebalance {
                at,
                epoch,
                snapshot,
                moves,
                failed,
            },
            FleetEvent::Migration {
                at,
                epoch,
                seq,
                fleet_id,
                vm,
                from,
                to,
                demand,
                dest_reserved_after,
                warm,
                guest_warm,
            } => DecisionRecord::Migration {
                at,
                epoch,
                seq,
                fleet_id,
                vm,
                from,
                to,
                demand,
                dest_reserved_after,
                warm,
                guest_warm,
            },
        }
    }
}

/// A recorded fleet run: the scenario, the seed, the live aggregates and
/// every decision taken — enough to re-execute the run pinned to its own
/// history and get the recorded aggregates back byte for byte.
#[derive(Clone, Debug, PartialEq)]
pub struct Journal {
    /// The scenario the run executed.
    pub scenario: ScenarioSpec,
    /// The base seed.
    pub seed: u64,
    /// Worker threads of the recording run (informational: the journal is
    /// byte-identical at any thread count).
    pub threads: usize,
    /// Admission statistics of the recorded run, pinned wholesale on
    /// replay (the release-retry counter is not derivable from records).
    pub admission: AdmissionStats,
    /// The live run's `summary_csv` — the divergence-detection material.
    pub summary: String,
    /// Every decision, in canonical `(instant, class, tie)` order.
    pub records: Vec<DecisionRecord>,
}

impl Journal {
    /// Runs `spec` on `threads` workers while recording every decision,
    /// returning the live aggregates and the journal.
    pub fn record(threads: usize, spec: &ScenarioSpec, seed: u64) -> (AggregateMetrics, Journal) {
        let (metrics, events) = ClusterRunner::new(threads).run_logged(spec, seed);
        let journal = Journal {
            scenario: spec.clone(),
            seed,
            threads,
            admission: metrics.admission,
            summary: metrics.summary_csv(),
            records: events.into_iter().map(DecisionRecord::from).collect(),
        };
        (metrics, journal)
    }

    /// The number of rebalance epochs the recorded run had (zero with the
    /// rebalancer off — the run is a single epoch with no boundary).
    pub fn epochs(&self) -> usize {
        ClusterRunner::epoch_ends(&self.scenario).len() - 1
    }

    /// The admission pin table: every task's and VM's recorded
    /// destination, plus the recorded admission statistics.
    pub fn pinned_plan(&self) -> PinnedPlan {
        let mut task_nodes = vec![None; self.scenario.flat_tasks()];
        let mut vm_nodes = vec![None; self.scenario.vms.len()];
        for r in &self.records {
            match r {
                DecisionRecord::TaskAdmission { fleet_id, node, .. } => {
                    if let Some(slot) = task_nodes.get_mut(*fleet_id) {
                        *slot = *node;
                    }
                }
                DecisionRecord::VmAdmission {
                    fleet_vm_id, node, ..
                } => {
                    if let Some(slot) = vm_nodes.get_mut(*fleet_vm_id) {
                        *slot = *node;
                    }
                }
                _ => {}
            }
        }
        PinnedPlan {
            admission: self.admission,
            task_nodes,
            vm_nodes,
        }
    }

    /// The per-epoch migration pin table. `up_to_epoch = None` pins every
    /// recorded epoch (exact replay); `Some(cut)` pins epochs `< cut` and
    /// leaves the rest to be decided live (the what-if cut point).
    pub fn pinned_moves(&self, up_to_epoch: Option<usize>) -> PinnedMoves {
        let mut epochs: Vec<Option<EpochDecision>> = vec![None; self.epochs()];
        for r in &self.records {
            match r {
                DecisionRecord::Rebalance { epoch, failed, .. } => {
                    if let Some(slot) = epochs.get_mut(*epoch) {
                        slot.get_or_insert_with(EpochDecision::default).failed = *failed;
                    }
                }
                DecisionRecord::Migration {
                    epoch,
                    fleet_id,
                    vm,
                    from,
                    to,
                    demand,
                    dest_reserved_after,
                    warm,
                    guest_warm,
                    ..
                } => {
                    // Records are in canonical order, so each epoch's moves
                    // arrive in `seq` order and push preserves it.
                    if let Some(slot) = epochs.get_mut(*epoch) {
                        slot.get_or_insert_with(EpochDecision::default)
                            .moves
                            .push(Migration {
                                fleet_id: *fleet_id,
                                vm: *vm,
                                from: *from,
                                to: *to,
                                demand: *demand,
                                dest_reserved_after: *dest_reserved_after,
                                warm: *warm,
                                guest_warm: guest_warm.clone(),
                            });
                    }
                }
                _ => {}
            }
        }
        if let Some(cut) = up_to_epoch {
            for slot in epochs.iter_mut().skip(cut) {
                *slot = None;
            }
        }
        PinnedMoves { epochs }
    }
}
