//! What-if replay: re-execute a journalled run with one policy swapped
//! from an arbitrary cut point, history pinned before the cut, the
//! swapped policy deciding after it — then diff the outcomes.

use selftune_cluster::runner::{plan_fleet, plan_fleet_pinned};
use selftune_cluster::{AggregateMetrics, ClusterRunner, PolicyKind, ScenarioSpec};

use crate::record::Journal;
use crate::replay::Replayer;

/// The single policy a what-if replay swaps.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PolicySwap {
    /// Turn the feedback rebalancer's drain decisions off from the cut
    /// onwards. Implemented by raising the pressure threshold above the
    /// signal's ceiling (the raw signal saturates at 1.0) rather than
    /// disabling the loop: the epoch *grid* — and with it every node's
    /// manager sampling schedule — stays identical to the recorded run,
    /// so the counterfactual differs only in the decisions.
    DisableRebalance,
    /// Swap the placement policy (candidate node ordering). With
    /// `cut_epoch == 0` the initial placement itself is re-decided under
    /// the new policy; from a later cut only the post-cut rebalance
    /// destinations change.
    Placement(PolicyKind),
    /// Freeze every elastic VM at its specified share (the fixed-share
    /// baseline of the elasticity experiments).
    FixedShares,
    /// Re-bound the node-level share plane: swap the floor and cap the
    /// per-node `ShareController`s run under (and switch the plane on if
    /// the recorded run had it off). Sweeping this over one recorded
    /// history answers "how tight could the node bounds have been?"
    /// without re-running the fleet live.
    ///
    /// Note: when the recorded run had *neither* the rebalancer nor the
    /// node-share plane enabled, enabling the plane here introduces epoch
    /// boundaries the recording did not have, so the pre-cut history is no
    /// longer pinned epoch-for-epoch. Journals recorded with either plane
    /// on (every diurnal scenario) keep their grid and their exactness.
    NodeShareBounds {
        /// Lowest bound an idle node may shed to.
        floor: f64,
        /// Highest bound a saturated node may claw back to.
        cap: f64,
    },
}

impl PolicySwap {
    /// Human-readable label for tables and logs.
    pub fn label(&self) -> String {
        match self {
            PolicySwap::DisableRebalance => "no-rebalance".to_owned(),
            PolicySwap::Placement(p) => format!("placement:{}", p.name()),
            PolicySwap::FixedShares => "fixed-shares".to_owned(),
            PolicySwap::NodeShareBounds { floor, cap } => format!("node-share:{floor}:{cap}"),
        }
    }
}

/// One counterfactual query: pin history up to `cut_epoch`, swap one
/// policy, let the run diverge from there.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WhatIf {
    /// First rebalance epoch decided by the *swapped* policy; epochs
    /// before it replay the journal verbatim. `0` re-decides everything.
    pub cut_epoch: usize,
    /// The policy to swap.
    pub swap: PolicySwap,
}

/// The outcome diff of a what-if replay.
#[derive(Clone, Debug)]
pub struct WhatIfReport {
    /// Exact replay of the journal (the factual).
    pub baseline: AggregateMetrics,
    /// The counterfactual under the swapped policy.
    pub variant: AggregateMetrics,
}

impl WhatIfReport {
    /// Counterfactual miss ratio minus factual miss ratio: positive means
    /// the recorded policy was doing useful work.
    pub fn miss_delta(&self) -> f64 {
        self.variant.miss_ratio() - self.baseline.miss_ratio()
    }
}

/// The journalled scenario with the what-if's policy swapped in.
pub fn variant_spec(journal: &Journal, whatif: &WhatIf) -> ScenarioSpec {
    let mut spec = journal.scenario.clone();
    match whatif.swap {
        PolicySwap::DisableRebalance => spec.rebalance.pressure = 2.0,
        PolicySwap::Placement(p) => spec.policy = p,
        PolicySwap::FixedShares => {
            for vm in &mut spec.vms {
                vm.elastic = false;
            }
        }
        PolicySwap::NodeShareBounds { floor, cap } => {
            assert!(
                0.0 < floor && floor <= cap && cap <= 1.0,
                "node-share bounds need 0 < floor <= cap <= 1, got [{floor}, {cap}]"
            );
            spec.node_share.enabled = true;
            spec.node_share.floor = floor;
            spec.node_share.cap = cap;
        }
    }
    spec
}

/// Runs the counterfactual on `threads` workers and diffs it against an
/// exact replay of the journal.
pub fn run_whatif(journal: &Journal, whatif: &WhatIf, threads: usize) -> WhatIfReport {
    let baseline = Replayer::new(threads).replay(journal);
    let spec = variant_spec(journal, whatif);
    // A placement swap from epoch 0 re-decides admission itself; every
    // other swap happened *after* the recorded initial placement, which
    // therefore stays pinned.
    let plan = match (whatif.swap, whatif.cut_epoch) {
        (PolicySwap::Placement(_), 0) => plan_fleet(&spec, journal.seed),
        _ => plan_fleet_pinned(&spec, journal.seed, &journal.pinned_plan()),
    };
    let moves = journal.pinned_moves(Some(whatif.cut_epoch));
    let variant = ClusterRunner::new(threads).run_pinned(&spec, journal.seed, &plan, &moves);
    WhatIfReport { baseline, variant }
}
