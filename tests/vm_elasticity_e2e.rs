//! VM-elasticity e2e: the acceptance run of the host-level control loop
//! (`selftune_virt::elastic`).
//!
//! Two claims, the two directions of elasticity (see
//! `selftune_virt::demo::run_two_phase` / `run_runaway`):
//!
//! * **(a) reclaim** — when a tenant's measured demand collapses mid-run,
//!   its elastic share is reclaimed and re-granted to a hungry sibling:
//!   at equal total admitted bandwidth the sibling completes more jobs
//!   (and misses less) than under static shares, while the phased tenant
//!   loses nothing during its busy phase.
//! * **(b) containment** — a runaway elastic tenant (guests wanting ~1.9
//!   CPUs) is pinned at the host cap: its grants never exceed the host
//!   bound minus its sibling's fixed share, and the sibling's miss rate
//!   stays at its solo baseline.

use selftune::simcore::time::Dur;
use selftune::virt::demo;

const SEED: u64 = 42;
const HORIZON: Dur = Dur::secs(10);

/// Host bound of the demo platform (see `demo::host_manager_config`).
const HOST_ULUB: f64 = 0.95;

#[test]
fn elastic_shares_reclaim_idle_bandwidth_for_the_hungry_sibling() {
    let stat = demo::run_two_phase(HORIZON, SEED, false);
    let elas = demo::run_two_phase(HORIZON, SEED, true);

    // The static baseline shows the problem: the hungry tenant is
    // compressed inside its frozen 0.45 share for the whole run...
    assert!(
        stat.hungry.miss_rate() > 0.5,
        "static hungry tenant unexpectedly healthy: {:.3}",
        stat.hungry.miss_rate()
    );
    // ...while the phased tenant's share idles after its busy phase.
    assert!((stat.phased_share - 0.45).abs() < 1e-9);
    assert!((stat.hungry_share - 0.45).abs() < 1e-9);

    // (a) Reclaim: the elastic run re-grants the idle bandwidth — the
    // hungry sibling completes strictly more at equal total bandwidth...
    assert!(
        elas.hungry.completions > stat.hungry.completions,
        "hungry sibling must gain completions: {} (elastic) vs {} (static)",
        elas.hungry.completions,
        stat.hungry.completions
    );
    assert!(
        elas.hungry.miss_rate() < stat.hungry.miss_rate(),
        "hungry sibling must miss less: {:.3} vs {:.3}",
        elas.hungry.miss_rate(),
        stat.hungry.miss_rate()
    );
    // ...and the share actually moved: the hungry VM ends above its
    // static 0.45, the phased VM below it.
    assert!(
        elas.hungry_share > 0.47,
        "hungry share did not grow: {:.3}",
        elas.hungry_share
    );
    assert!(
        elas.phased_share < 0.45,
        "phased share was not reclaimed: {:.3}",
        elas.phased_share
    );

    // The phased tenant's busy phase is untouched by elasticity: same
    // completions (its workload finishes its busy phase either way) and
    // no worse misses.
    assert!(
        elas.phased.completions * 10 >= stat.phased.completions * 9,
        "phased tenant lost work: {} vs {}",
        elas.phased.completions,
        stat.phased.completions
    );

    // Elasticity never oversubscribed the node: the two grants fit under
    // the host bound at the horizon.
    assert!(elas.phased_share + elas.hungry_share <= HOST_ULUB + 1e-9);
}

#[test]
fn runaway_elastic_vm_is_pinned_at_the_host_cap() {
    let solo = demo::run_solo(HORIZON, SEED);
    let run = demo::run_runaway(HORIZON, SEED);

    // (b) Containment: the runaway controller probes upward forever, but
    // no grant ever exceeds what the host bound leaves next to the
    // victim's fixed 0.6 share.
    let cap = HOST_ULUB - run.victim_share;
    assert!(
        run.runaway_peak_share <= cap + 1e-9,
        "runaway grant escaped the cap: {:.4} > {cap:.4}",
        run.runaway_peak_share
    );
    // It did grow up to that cap (the elastic loop is live, not frozen).
    assert!(
        run.runaway_peak_share > 0.3 + 1e-9,
        "runaway never grew past its initial share: {:.4}",
        run.runaway_peak_share
    );
    // The victim's share is untouched and its miss rate stays at the
    // solo baseline envelope.
    assert!((run.victim_share - 0.6).abs() < 1e-9);
    let envelope = (2.0 * solo.miss_rate()).max(0.05);
    assert!(
        run.victim.miss_rate() <= envelope,
        "victim leaked under a runaway elastic sibling: {:.4} > {envelope:.4}",
        run.victim.miss_rate()
    );
    // The runaway tenant saturated its own VM (the pressure was real).
    assert!(run.runaway.miss_rate() > 0.9);
}

#[test]
fn elasticity_claims_hold_across_seeds() {
    for seed in [7u64, 99] {
        let stat = demo::run_two_phase(HORIZON, seed, false);
        let elas = demo::run_two_phase(HORIZON, seed, true);
        assert!(
            elas.hungry.completions > stat.hungry.completions,
            "seed {seed}: {} vs {}",
            elas.hungry.completions,
            stat.hungry.completions
        );
        let run = demo::run_runaway(HORIZON, seed);
        assert!(run.runaway_peak_share <= HOST_ULUB - run.victim_share + 1e-9);
        let solo = demo::run_solo(HORIZON, seed);
        assert!(run.victim.miss_rate() <= (2.0 * solo.miss_rate()).max(0.05));
    }
}
