//! Cluster e2e: the composed three-level control plane under diurnal and
//! flash-crowd demand.
//!
//! The fleet runs the same recursive feedback law at three levels —
//! task → VM (elastic shares inside each node), fleet → node (supervisor
//! re-bounding from epoch feedback) and fleet-wide (migration). The
//! diurnal demo layers a fleet-wide wave of lying `HungryRt` tasks and a
//! flash crowd pinned to the VM-hosting prefix over a quiet base. At
//! equal total bandwidth and the same seed, the composed plane must beat
//! *both* single-level variants on fleet miss rate: the rebalancer alone
//! cannot free the bandwidth tenant VMs hoard where the flash crowd
//! lands, and the in-place loops alone cannot move work off a prefix
//! that is saturated outright.

use selftune::cluster::prelude::*;
use selftune::journal::prelude::*;

const SEED: u64 = 42;

/// One diurnal-demo variant: `in_place` closes the elastic-VM and
/// node-rebound loops, `rebalance` the migration loop. The epoch grid is
/// identical across variants so they differ only in decisions.
fn scenario(in_place: bool, rebalance: bool) -> ScenarioSpec {
    let mut spec = ScenarioSpec::diurnal_demo(6, 12);
    if in_place {
        for vm in &mut spec.vms {
            vm.elastic = true;
        }
        spec = spec.with_node_share(ScenarioSpec::diurnal_node_share());
    }
    if rebalance {
        spec = spec.with_rebalance(ScenarioSpec::diurnal_rebalance());
    } else {
        spec.rebalance.period = ScenarioSpec::diurnal_rebalance().period;
    }
    spec
}

#[test]
fn composed_plane_beats_each_single_level_on_fleet_miss_rate() {
    let static_run = ClusterRunner::new(2).run(&scenario(false, false), SEED);
    let rebalance_only = ClusterRunner::new(2).run(&scenario(false, true), SEED);
    let elastic_only = ClusterRunner::new(2).run(&scenario(true, false), SEED);
    let composed = ClusterRunner::new(2).run(&scenario(true, true), SEED);

    // The scenario is actually stressful and each level actually works.
    assert!(
        static_run.miss_ratio() > 0.05,
        "diurnal + flash crowd must overload the static fleet, got {:.4}",
        static_run.miss_ratio()
    );
    assert!(composed.rebalance.moves >= 1, "composed run must migrate");
    assert_eq!(rebalance_only.admission, {
        // Equal total bandwidth: admission decisions are identical across
        // variants (control levers only change what happens afterwards).
        let mut a = composed.admission;
        a.migrations = rebalance_only.admission.migrations;
        a
    });

    // The quantitative claim: the composed plane strictly beats both
    // single-level variants, and the static baseline, on fleet miss rate.
    assert!(
        composed.miss_ratio() < rebalance_only.miss_ratio(),
        "composed must beat rebalance-only: {:.4} vs {:.4}",
        composed.miss_ratio(),
        rebalance_only.miss_ratio()
    );
    assert!(
        composed.miss_ratio() < elastic_only.miss_ratio(),
        "composed must beat elastic-only: {:.4} vs {:.4}",
        composed.miss_ratio(),
        elastic_only.miss_ratio()
    );
    assert!(
        composed.miss_ratio() < static_run.miss_ratio(),
        "composed must beat static: {:.4} vs {:.4}",
        composed.miss_ratio(),
        static_run.miss_ratio()
    );
    // And it does so by doing *more* work, not by shedding it.
    assert!(composed.completions() > static_run.completions());
}

#[test]
fn node_rebounds_claw_back_on_hot_nodes_and_shed_on_idle_ones() {
    let spec = scenario(true, true);
    let (_, events) = ClusterRunner::new(2).run_logged(&spec, SEED);
    let rebounds: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            FleetEvent::NodeRebound { prev, bound, .. } => Some((*prev, *bound)),
            _ => None,
        })
        .collect();
    assert!(
        !rebounds.is_empty(),
        "the composed run must re-bound at least one node"
    );
    // Both directions of the law show up: claw-backs above the previous
    // bound under pressure, sheds below it when demand recedes.
    assert!(
        rebounds.iter().any(|&(prev, bound)| bound > prev),
        "expected at least one claw-back"
    );
    assert!(
        rebounds.iter().any(|&(prev, bound)| bound < prev),
        "expected at least one shed"
    );
    let ns = ScenarioSpec::diurnal_node_share();
    for &(_, bound) in &rebounds {
        assert!(
            bound >= ns.floor - 1e-9 && bound <= ns.cap + 1e-9,
            "bound {bound} outside [{}, {}]",
            ns.floor,
            ns.cap
        );
    }
}

#[test]
fn composed_journal_is_byte_identical_at_1_2_and_8_threads() {
    let spec = scenario(true, true);
    let (_, baseline) = Journal::record(1, &spec, SEED);
    for threads in [2usize, 8] {
        let (_, mut journal) = Journal::record(threads, &spec, SEED);
        journal.threads = 1; // the only field allowed to differ
        assert_eq!(
            journal.to_text(),
            baseline.to_text(),
            "journal text diverged at {threads} threads"
        );
    }
    // The journal carries the new decision class and replays exactly.
    assert!(baseline
        .records
        .iter()
        .any(|r| matches!(r, DecisionRecord::NodeRebound { .. })));
    Replayer::new(4)
        .verify(&baseline)
        .expect("composed journal replays byte for byte");
}

#[test]
fn diurnal_scenario_round_trips_through_text() {
    let spec = scenario(true, true);
    let parsed = ScenarioSpec::from_text(&spec.to_text()).expect("parse");
    assert_eq!(parsed.to_text(), spec.to_text());
    assert_eq!(parsed.phases, spec.phases);
    assert_eq!(parsed.node_share, spec.node_share);
    // The reloaded scenario reproduces the original run byte for byte.
    let a = ClusterRunner::new(2).run(&spec, SEED);
    let b = ClusterRunner::new(2).run(&parsed, SEED);
    assert_eq!(a.summary_csv(), b.summary_csv());
}
