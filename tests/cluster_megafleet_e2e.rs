//! Cluster e2e: the megafleet story at a real 10k-node count.
//!
//! The skewed-overload claim does not get to shrink with scale: first-fit
//! packs lying tasks onto the low-id slice of a 10 000-node fleet, and
//! the feedback rebalancer must still cut fleet misses — now picking
//! destinations out of an idle majority of thousands via the bucketed
//! headroom index, and reporting through mergeable histogram sketches
//! instead of per-task gap vectors. The test pins the three contracts
//! that make that safe: the rebalancer wins, the index is byte-identical
//! to the linear-scan placer, and sketch aggregates cannot observe the
//! worker-thread count.
//!
//! Sized for the debug test profile: 10k nodes stay (the node axis is
//! the point), the liar population and horizon shrink.

use selftune::cluster::prelude::*;
use selftune::simcore::time::Dur;

const SEED: u64 = 42;
const NODES: usize = 10_000;
const TASKS: usize = 200;

fn scenario(rebalance_on: bool) -> ScenarioSpec {
    let spec = ScenarioSpec::megafleet_demo(NODES, TASKS, Dur::secs(2));
    if rebalance_on {
        spec.with_rebalance(ScenarioSpec::megafleet_rebalance(Dur::secs(2)))
    } else {
        spec
    }
}

fn runner(threads: usize) -> ClusterRunner {
    ClusterRunner::new(threads).with_sketch_aggregates(true)
}

#[test]
fn megafleet_rebalancer_cuts_misses_at_ten_thousand_nodes() {
    let frozen = runner(2).run(&scenario(false), SEED);
    let feedback = runner(2).run(&scenario(true), SEED);

    assert_eq!(frozen.nodes.len(), NODES);
    assert!(
        frozen.misses() > 0,
        "the over-packed prefix must miss without rebalance"
    );
    assert_eq!(frozen.rebalance.moves, 0);

    // The feedback run migrated liars into the idle sea and won on every
    // fleet-level count.
    assert!(
        feedback.rebalance.moves >= 1,
        "expected migrations, got {}",
        feedback.rebalance.moves
    );
    assert!(
        feedback.miss_ratio() < frozen.miss_ratio(),
        "feedback must cut the fleet miss rate at 10k nodes: {:.4} vs {:.4}",
        feedback.miss_ratio(),
        frozen.miss_ratio()
    );
    assert!(
        feedback.completions() > frozen.completions(),
        "healing the packed prefix must raise throughput"
    );
    for r in &feedback.rebalance.records {
        assert!(
            r.dest_reserved_after <= 0.9 + 1e-9,
            "migration overbooked node {}: {}",
            r.to,
            r.dest_reserved_after
        );
    }

    // Sketch mode keeps fleet counters exact: a detailed re-run of the
    // same spec agrees on every count, only CDF resolution differs.
    let detailed = ClusterRunner::new(2).run(&scenario(true), SEED);
    assert_eq!(detailed.completions(), feedback.completions());
    assert_eq!(detailed.misses(), feedback.misses());
    assert_eq!(detailed.rebalance.moves, feedback.rebalance.moves);
    // And it actually dropped the per-task vectors.
    assert!(
        feedback.nodes.iter().all(|n| n.tasks.is_empty()),
        "sketch mode must not retain per-task reports"
    );
    assert!(detailed.nodes.iter().any(|n| !n.tasks.is_empty()));
}

#[test]
fn megafleet_index_is_byte_identical_to_the_scan_placer() {
    let spec = scenario(true);
    let indexed = runner(2).run(&spec, SEED);
    let scanned = runner(2).with_scan_placement(true).run(&spec, SEED);
    assert_eq!(
        indexed.summary_csv(),
        scanned.summary_csv(),
        "the bucketed index is a data structure, not a policy change"
    );
    assert!(indexed.rebalance.moves >= 1);
}

#[test]
fn megafleet_sketch_aggregates_are_thread_count_invariant() {
    let spec = scenario(true);
    let serial = runner(1).run(&spec, SEED);
    let two = runner(2).run(&spec, SEED);
    let wide = runner(8).run(&spec, SEED);
    assert_eq!(
        serial.summary_csv(),
        two.summary_csv(),
        "sketch aggregates must not depend on thread count (1 vs 2)"
    );
    assert_eq!(
        serial.summary_csv(),
        wide.summary_csv(),
        "sketch aggregates must not depend on thread count (1 vs 8)"
    );
    assert!(serial.summary_csv().contains("\ncdf,"));
}
