//! Cluster e2e: the million-task operating point.
//!
//! The task axis gets the same treatment the node axis got in the
//! megafleet e2e: a fleet whose *population* is pushed far past the
//! per-node norm, with every contract intact — the plan keeps the whole
//! honest population live to the horizon, the feedback rebalancer still
//! cuts fleet misses with a sea of bystanders in the arenas, aggregates
//! cannot observe the worker-thread count (the epoch reduction is a
//! balanced tree over fixed node ranges), and task-arena slot recycling
//! is invisible in the bytes.
//!
//! Profile-adaptive sizing: the debug test profile runs the same
//! scenario shape at 500 nodes / 20k tasks; the release profile runs the
//! real thing — 2.5k nodes and one million live tasks (the
//! `cluster_milliontask` bench binary exercises this same point with
//! wall-clock reporting).

use selftune::cluster::prelude::*;
use selftune::simcore::time::Dur;

const SEED: u64 = 42;
const NODES: usize = if cfg!(debug_assertions) { 500 } else { 2_500 };
const TASKS: usize = if cfg!(debug_assertions) {
    20_000
} else {
    1_000_000
};

fn horizon() -> Dur {
    if cfg!(debug_assertions) {
        Dur::ms(800)
    } else {
        Dur::ms(500)
    }
}

fn scenario(rebalance_on: bool) -> ScenarioSpec {
    let spec = ScenarioSpec::milliontask_demo(NODES, TASKS, horizon());
    if rebalance_on {
        spec.with_rebalance(ScenarioSpec::milliontask_rebalance(horizon()))
    } else {
        spec
    }
}

fn runner(threads: usize) -> ClusterRunner {
    ClusterRunner::new(threads).with_sketch_aggregates(true)
}

#[test]
fn milliontask_keeps_the_population_live_and_wins_on_misses() {
    // The honest population has no churn and no departures: every
    // admitted honest task is still live at the horizon. Admission must
    // not drop a single one (only liars may lose their prefix slot to
    // honest stragglers in the arrival race).
    let spec = scenario(false);
    let liars: usize = spec.phases.iter().map(|p| p.tasks).sum();
    let plan = plan_fleet(&spec, SEED);
    assert!(
        plan.admission.admitted as usize >= TASKS,
        "the full honest population must stay live: {} admitted, {} tasks",
        plan.admission.admitted,
        TASKS
    );
    assert!(
        (plan.admission.rejected as usize) <= liars / 20,
        "rejections must stay a sliver of the liar wave: {}",
        plan.admission.rejected
    );

    let frozen = runner(2).run(&spec, SEED);
    let feedback = runner(2).run(&scenario(true), SEED);
    assert_eq!(frozen.nodes.len(), NODES);
    assert!(
        frozen.misses() > 0,
        "the liar-packed prefix must miss without rebalance"
    );
    assert_eq!(frozen.rebalance.moves, 0);
    assert!(
        feedback.rebalance.moves >= 1,
        "expected migrations, got {}",
        feedback.rebalance.moves
    );
    assert!(
        feedback.misses() < frozen.misses(),
        "feedback must cut fleet misses with {} bystanders: {} vs {}",
        TASKS,
        feedback.misses(),
        frozen.misses()
    );
    assert!(
        feedback.completions() > frozen.completions(),
        "healing the liar prefix must raise throughput"
    );
    // The *rate* comparison is meaningful at the real operating point;
    // at the shrunken debug scale migrations reset enough gap recording
    // that the denominator, not the misses, dominates the ratio.
    if !cfg!(debug_assertions) {
        assert!(
            feedback.miss_ratio() < frozen.miss_ratio(),
            "feedback must cut the fleet miss rate at 1M tasks: {:.5} vs {:.5}",
            feedback.miss_ratio(),
            frozen.miss_ratio()
        );
    }
    for r in &feedback.rebalance.records {
        assert!(
            r.dest_reserved_after <= 0.9 + 1e-9,
            "migration overbooked node {}: {}",
            r.to,
            r.dest_reserved_after
        );
    }
}

#[test]
fn milliontask_aggregates_ignore_thread_count_and_slot_recycling() {
    let spec = scenario(true);
    let serial = runner(1).run(&spec, SEED);
    let two = runner(2).run(&spec, SEED);
    let wide = runner(8).run(&spec, SEED);
    assert_eq!(
        serial.summary_csv(),
        two.summary_csv(),
        "tree-reduced aggregates must not depend on thread count (1 vs 2)"
    );
    assert_eq!(
        serial.summary_csv(),
        wide.summary_csv(),
        "tree-reduced aggregates must not depend on thread count (1 vs 8)"
    );

    // The arena free-list recycles departed liar slots mid-run; freezing
    // it must change the footprint, never the bytes.
    let norec = runner(2).with_recycling(false).run(&spec, SEED);
    assert_eq!(
        norec.summary_csv(),
        two.summary_csv(),
        "slot recycling must be invisible in the aggregate bytes"
    );

    // At this population size per-task reports must never materialise.
    assert!(
        two.nodes.iter().all(|n| n.tasks.is_empty()),
        "sketch mode must not retain per-task reports"
    );
    assert!(two.summary_csv().contains("\ncdf,"));
}
