//! Journal e2e: the checked-in million-task-shaped fixture replays byte
//! for byte.
//!
//! `examples/milliontask.journal` is a recorded run of the milliontask
//! demo at *fixture scale* — 2 000 nodes and 2 000 honest tasks plus the
//! liar wave, feedback rebalancer on — because a journal of the full
//! million-task fleet would be gigabytes. The scenario shape (staggered
//! de-synchronised arrivals, prefix-filling liar wave, mid-flight lease
//! retirements through the recycling arena) is identical. Generated
//! with:
//!
//! ```bash
//! cargo run --release --bin cluster_milliontask -- \
//!     --smoke --journal examples/milliontask.journal
//! ```
//!
//! It pins this PR's hot path — balanced-tree aggregate reduction,
//! free-list slot recycling, the narrowed task report state — to bytes
//! recorded before any future refactor: if replay of the fixture ever
//! diverges, either the simulation's determinism or its decision logic
//! changed.

use selftune::journal::prelude::*;

fn fixture() -> Journal {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples/milliontask.journal"
    ))
    .expect("checked-in milliontask journal");
    Journal::from_text(&text).expect("milliontask journal parses")
}

#[test]
fn milliontask_fixture_replays_byte_identically() {
    let journal = fixture();
    assert_eq!(journal.scenario.nodes, 2_000);
    assert!(
        journal.records.len() > 2_000,
        "fixture should hold placements and moves, got {}",
        journal.records.len()
    );

    let replayed = Replayer::new(2)
        .verify(&journal)
        .unwrap_or_else(|e| panic!("milliontask fixture diverged: {e}"));
    assert!(replayed.rebalance.moves >= 1);

    // The text form is a fixed point: re-encoding the parsed fixture
    // reproduces the file, so nobody can hand-edit it unnoticed.
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples/milliontask.journal"
    ))
    .unwrap();
    assert_eq!(journal.to_text(), text);
}
