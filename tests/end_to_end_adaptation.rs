//! End-to-end integration: the full paper pipeline — tracer → period
//! analyser → LFS++ → supervisor → CBS — on legacy media players.

use selftune::prelude::*;

fn managed_kernel() -> (Kernel<ReservationScheduler>, SelfTuningManager) {
    let mut kernel = Kernel::new(ReservationScheduler::new());
    let (hook, reader) = Tracer::create(TracerConfig::default());
    kernel.install_hook(Box::new(hook));
    let manager = SelfTuningManager::new(ManagerConfig::default(), reader);
    (kernel, manager)
}

#[test]
fn single_player_detected_attached_and_served() {
    let (mut kernel, mut manager) = managed_kernel();
    let cfg = MediaConfig::mplayer_video_25fps();
    let u = cfg.utilisation();
    let tid = kernel.spawn("mplayer", Box::new(MediaPlayer::new(cfg, Rng::new(5))));
    manager.manage(tid, "mplayer", ControllerConfig::default());
    manager.run(&mut kernel, Time::ZERO + Dur::secs(10));

    // Detected period ≈ 40 ms.
    let p = manager
        .controller_of(tid)
        .and_then(|c| c.period())
        .expect("period detected")
        .as_ms_f64();
    assert!((p - 40.0).abs() < 1.5, "period {p} ms");

    // Reservation exists and its bandwidth brackets the demand.
    let sid = manager.server_of(tid).expect("attached");
    let bw = kernel.sched().server(sid).config().bandwidth();
    assert!(bw > u && bw < 2.0 * u, "bw {bw}, utilisation {u}");

    // Steady-state QoS: inter-frame times at the nominal 40 ms.
    let ift = kernel.metrics().inter_mark_times_ms("mplayer.frame");
    let steady = &ift[ift.len() / 2..];
    let mean = steady.iter().sum::<f64>() / steady.len() as f64;
    assert!((mean - 40.0).abs() < 1.0, "steady IFT mean {mean}");
}

#[test]
fn two_players_with_different_rates_both_served() {
    let (mut kernel, mut manager) = managed_kernel();
    let video = kernel.spawn(
        "video",
        Box::new(MediaPlayer::new(
            MediaConfig::mplayer_video_25fps(),
            Rng::new(11),
        )),
    );
    let mut audio_cfg = MediaConfig::mplayer_mp3();
    audio_cfg.label = "audio".to_owned();
    let audio = kernel.spawn("audio", Box::new(MediaPlayer::new(audio_cfg, Rng::new(12))));
    manager.manage(video, "video", ControllerConfig::default());
    manager.manage(audio, "audio", ControllerConfig::default());
    manager.run(&mut kernel, Time::ZERO + Dur::secs(12));

    let pv = manager
        .controller_of(video)
        .and_then(|c| c.period())
        .expect("video period")
        .as_ms_f64();
    let pa = manager
        .controller_of(audio)
        .and_then(|c| c.period())
        .expect("audio period")
        .as_ms_f64();
    assert!((pv - 40.0).abs() < 2.0, "video period {pv}");
    assert!((pa - 1000.0 / 32.5).abs() < 2.0, "audio period {pa}");

    // Both attached, total reservation within the supervisor bound.
    assert!(manager.server_of(video).is_some());
    assert!(manager.server_of(audio).is_some());
    let total = kernel.sched().total_reserved_bandwidth();
    assert!(total <= 0.95 + 1e-9, "total reserved {total}");
}

#[test]
fn workload_increase_is_tracked() {
    // A hand-rolled periodic task whose job cost doubles mid-run: the
    // reservation must follow the demand upward (Section 4.4's motivation
    // for the spread factor and the sliding predictor window).
    use selftune_simcore::task::FnWorkload;

    let (mut kernel, mut manager) = managed_kernel();
    let period = Dur::ms(40);
    let switch_at = Time::ZERO + Dur::secs(8);
    let mut release: Option<Time> = None;
    let mut phase = 0u8;
    let wl = FnWorkload(move |ctx: &mut selftune_simcore::TaskCtx<'_>| {
        match phase {
            0 => {
                // Wake on the next period boundary (traced absolute sleep).
                let next = match release {
                    None => ctx.now,
                    Some(r) => r + period,
                };
                release = Some(next);
                phase = 1;
                Action::syscall_blocking(SyscallNr::ClockNanosleep, Blocking::Until(next))
            }
            1 => {
                phase = 2;
                Action::syscall(SyscallNr::Read)
            }
            2 => {
                phase = 3;
                let cost = if ctx.now < switch_at {
                    Dur::from_ms_f64(6.0)
                } else {
                    Dur::from_ms_f64(14.0)
                };
                Action::Compute(cost)
            }
            _ => {
                phase = 0;
                Action::syscall(SyscallNr::Writev)
            }
        }
    });
    let tid = kernel.spawn("vbr", Box::new(wl));
    manager.manage(tid, "vbr", ControllerConfig::default());

    manager.run(&mut kernel, Time::ZERO + Dur::secs(8));
    let bw_light = kernel.metrics().series("vbr.bw").last().expect("bw").1;
    // Light phase: ≈ (6/40)·(1 + 0.15) = 0.1725.
    assert!((bw_light - 0.1725).abs() < 0.05, "light bw {bw_light}");

    // Right after the switch the controller transiently over-reserves
    // (the starved task consumes whatever it gets, ratcheting the measured
    // demand — the "sudden workload increase" weakness the paper's §6
    // leaves to future work), then settles once the backlog clears and
    // the predictor window flushes.
    manager.run(&mut kernel, Time::ZERO + Dur::secs(30));
    let bw_heavy = kernel.metrics().series("vbr.bw").last().expect("bw").1;
    // Heavy phase steady state: ≈ (14/40)·1.15 = 0.4025.
    assert!((bw_heavy - 0.4025).abs() < 0.1, "heavy bw {bw_heavy}");
    assert!(bw_heavy > bw_light * 1.8, "{bw_light} -> {bw_heavy}");
}
