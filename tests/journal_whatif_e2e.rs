//! Journal e2e: record a fleet run, replay it exactly, query a
//! counterfactual.
//!
//! The full pipeline of `selftune::journal` on the canonical
//! skewed-overload fleet (the scenario of `cluster_rebalance_e2e`): the
//! recorded journal round-trips through its text codec, a replayer at
//! any thread count reproduces the live aggregates byte for byte, and
//! the "what if the rebalancer had been off?" query reproduces a live
//! run of the static fleet *exactly* — with a miss-rate gap consistent
//! with the feedback-vs-frozen experiment (~31% vs ~14% fleet miss
//! ratio in the original rebalancer acceptance run).

use selftune::cluster::prelude::*;
use selftune::journal::prelude::*;

const SEED: u64 = 42;

/// The canonical skewed-overload fleet with the feedback rebalancer on.
fn scenario() -> ScenarioSpec {
    ScenarioSpec::skewed_overload_demo(4, 12).with_rebalance(ScenarioSpec::demo_rebalance())
}

#[test]
fn journal_round_trips_and_replays_byte_identically() {
    let spec = scenario();
    let (live, journal) = Journal::record(2, &spec, SEED);

    // The run exercised every control loop worth journaling.
    assert!(journal.records.len() >= 20, "{}", journal.records.len());
    assert!(live.rebalance.moves >= 1);

    // Text codec: exact round-trip, text form a fixed point.
    let text = journal.to_text();
    let reloaded = Journal::from_text(&text).expect("journal parses");
    assert_eq!(reloaded, journal);
    assert_eq!(reloaded.to_text(), text);

    // Replay from the reloaded journal alone, at 1/2/8 threads.
    for threads in [1usize, 2, 8] {
        let replayed = Replayer::new(threads)
            .verify(&reloaded)
            .unwrap_or_else(|e| panic!("replay diverged at {threads} threads: {e}"));
        assert_eq!(replayed.summary_csv(), live.summary_csv());
    }
}

#[test]
fn recording_is_thread_count_invariant() {
    let spec = scenario();
    let (_, baseline) = Journal::record(1, &spec, SEED);
    for threads in [2usize, 8] {
        let (_, journal) = Journal::record(threads, &spec, SEED);
        // `threads` is part of the header; normalise it before comparing.
        let mut journal = journal;
        journal.threads = 1;
        assert_eq!(journal.to_text(), baseline.to_text());
    }
}

#[test]
fn disabling_the_rebalancer_reproduces_the_static_counterfactual_exactly() {
    let spec = scenario();
    let (live, journal) = Journal::record(2, &spec, SEED);
    let whatif = WhatIf {
        cut_epoch: 0,
        swap: PolicySwap::DisableRebalance,
    };
    let report = run_whatif(&journal, &whatif, 2);

    // The baseline leg is the exact replay of the recorded run...
    assert_eq!(report.baseline.summary_csv(), live.summary_csv());

    // ...and the counterfactual leg equals a LIVE run of the swapped
    // spec, byte for byte — the what-if is exact, not approximate.
    let live_variant = ClusterRunner::new(2).run(&variant_spec(&journal, &whatif), SEED);
    assert_eq!(report.variant.summary_csv(), live_variant.summary_csv());

    // Quantitatively: the factual run migrated and kept the fleet miss
    // ratio well below the counterfactual, consistent with the
    // rebalancer acceptance result (~14% with feedback vs ~31% frozen;
    // here 0.18 vs 0.30 at seed 42).
    assert!(report.baseline.rebalance.moves >= 1);
    assert_eq!(report.variant.rebalance.moves, 0);
    assert!(
        report.baseline.miss_ratio() < 0.25,
        "feedback run miss ratio {:.4}",
        report.baseline.miss_ratio()
    );
    assert!(
        report.variant.miss_ratio() > 0.25,
        "counterfactual miss ratio {:.4}",
        report.variant.miss_ratio()
    );
    assert!(
        report.miss_delta() > 0.05,
        "miss delta {:.4}",
        report.miss_delta()
    );
}

#[test]
fn a_mid_run_cut_interpolates_between_factual_and_counterfactual() {
    let spec = scenario();
    let (_, journal) = Journal::record(2, &spec, SEED);
    let full = run_whatif(
        &journal,
        &WhatIf {
            cut_epoch: 0,
            swap: PolicySwap::DisableRebalance,
        },
        2,
    );
    let mid = run_whatif(
        &journal,
        &WhatIf {
            cut_epoch: journal.epochs() / 2,
            swap: PolicySwap::DisableRebalance,
        },
        2,
    );

    // Migrations before the cut are pinned from the journal, so the
    // mid-run counterfactual keeps part of the feedback benefit: its
    // miss ratio lands strictly between the factual run and the
    // never-rebalanced one.
    assert!(mid.variant.rebalance.moves > 0);
    assert!(mid.variant.rebalance.moves < full.baseline.rebalance.moves);
    assert!(mid.variant.miss_ratio() > full.baseline.miss_ratio());
    assert!(mid.variant.miss_ratio() < full.variant.miss_ratio());
}
