//! Journal e2e: the checked-in composed-diurnal fixture replays byte
//! for byte.
//!
//! `examples/diurnal.journal` is a recorded run of the composed diurnal
//! fleet (6 nodes, elastic VM shares + node re-bounding + feedback
//! rebalancer), generated with:
//!
//! ```bash
//! cargo run --release --bin cluster_diurnal -- \
//!     --fast --journal examples/diurnal.journal
//! ```
//!
//! It pins the three-level control plane — the decision stream the
//! `distrib` follower replicates — to bytes recorded before any future
//! refactor: if replay of the fixture ever diverges, the simulation's
//! determinism or its decision logic changed.

use selftune::journal::prelude::*;

fn fixture_text() -> String {
    std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples/diurnal.journal"
    ))
    .expect("checked-in diurnal journal")
}

#[test]
fn diurnal_fixture_replays_byte_identically() {
    let text = fixture_text();
    let journal = Journal::from_text(&text).expect("diurnal journal parses");
    assert_eq!(journal.scenario.name, "diurnal");
    assert!(journal.scenario.rebalance.enabled);
    assert!(journal.scenario.node_share.enabled);
    assert!(
        journal.records.len() > 100,
        "fixture should hold admissions, grants, re-bounds and moves, got {}",
        journal.records.len()
    );

    let replayed = Replayer::new(2)
        .verify(&journal)
        .unwrap_or_else(|e| panic!("diurnal fixture diverged: {e}"));
    assert!(replayed.rebalance.moves >= 1);

    // The text form is a fixed point: re-encoding the parsed fixture
    // reproduces the file, so nobody can hand-edit it unnoticed.
    assert_eq!(journal.to_text(), text);
}

#[test]
fn diurnal_fixture_answers_node_share_whatif() {
    let journal = Journal::from_text(&fixture_text()).expect("diurnal journal parses");
    // The node-share counterfactual this PR adds: tighter per-node bounds
    // over the same recorded history, cut mid-run.
    let whatif = WhatIf {
        cut_epoch: journal.epochs() / 2,
        swap: PolicySwap::NodeShareBounds {
            floor: 0.5,
            cap: 0.8,
        },
    };
    let report = run_whatif(&journal, &whatif, 2);
    assert_eq!(
        report.baseline.summary_csv(),
        journal.summary,
        "the baseline leg must be the exact replay"
    );
    // The variant ran under different bounds; it must still be a valid
    // full-horizon run (reduced at the same instant as the baseline).
    assert!(report.variant.miss_ratio().is_finite());
}
