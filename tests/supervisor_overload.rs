//! Supervisor invariants under saturation: the total reserved bandwidth
//! never exceeds U_lub, no matter how greedy the managed tasks are.

use selftune::prelude::*;
use selftune_apps::PeriodicRt;

#[test]
fn total_bandwidth_never_exceeds_ulub() {
    let mut kernel = Kernel::new(ReservationScheduler::new());
    let (hook, reader) = Tracer::create(TracerConfig::default());
    kernel.install_hook(Box::new(hook));

    // Three heavy periodic tasks, each wanting ≈ 45% of the CPU: total
    // demand ≈ 135% ≫ U_lub = 0.95.
    let mut manager = SelfTuningManager::new(ManagerConfig::default(), reader);
    let mut rng = Rng::new(21);
    for i in 0..3 {
        let label = format!("greedy{i}");
        let w = PeriodicRt::new(&label, Dur::ms(18), Dur::ms(40), 0.05, rng.fork());
        let tid = kernel.spawn(&label, Box::new(w));
        manager.manage(tid, &label, ControllerConfig::default());
    }

    let end = Time::ZERO + Dur::secs(10);
    while kernel.now() < end {
        let next = (kernel.now() + Dur::ms(500)).min(end);
        kernel.run_until(next);
        manager.step(&mut kernel);
        // Invariant after every supervisor decision.
        let total = kernel.sched().total_reserved_bandwidth();
        assert!(
            total <= 0.95 + 1e-6,
            "total reserved {total} at {}",
            kernel.now()
        );
    }

    // All three got *something* (no starvation-to-zero).
    for i in 0..3 {
        let series = kernel.metrics().series(&format!("greedy{i}.bw"));
        let last = series.last().expect("bandwidth recorded").1;
        assert!(last > 0.1, "greedy{i} got {last}");
    }
}

#[test]
fn headroom_is_granted_back_when_demand_drops() {
    // Two tasks: one exits mid-run; the survivor's request is then granted
    // in full.
    let mut kernel = Kernel::new(ReservationScheduler::new());
    let (hook, reader) = Tracer::create(TracerConfig::default());
    kernel.install_hook(Box::new(hook));
    let mut manager = SelfTuningManager::new(ManagerConfig::default(), reader);

    let hungry = PeriodicRt::new("hungry", Dur::ms(26), Dur::ms(40), 0.02, Rng::new(1));
    let hungry_tid = kernel.spawn("hungry", Box::new(hungry));
    manager.manage(hungry_tid, "hungry", ControllerConfig::default());

    // A ~50% competitor that occupies bandwidth (created directly, like a
    // pre-existing reservation).
    let sid = kernel
        .sched_mut()
        .create_server(ServerConfig::new(Dur::ms(20), Dur::ms(40)));
    let noisy = PeriodicRt::new("noisy", Dur::ms(19), Dur::ms(40), 0.02, Rng::new(2));
    let noisy_tid = kernel.spawn("noisy", Box::new(noisy));
    kernel.sched_mut().place(noisy_tid, Place::Server(sid));

    manager.run(&mut kernel, Time::ZERO + Dur::secs(6));
    let constrained = kernel.metrics().series("hungry.bw").last().unwrap().1;
    // Wants (26/40)·1.15 ≈ 0.75 but only 0.45 is free.
    assert!(constrained < 0.50, "constrained bw {constrained}");

    // Free the competitor's bandwidth.
    kernel
        .sched_mut()
        .server_mut(sid)
        .set_params(Dur::us(400), Dur::ms(40));
    manager.run(&mut kernel, Time::ZERO + Dur::secs(14));
    let freed = kernel.metrics().series("hungry.bw").last().unwrap().1;
    assert!(freed > 0.65, "freed bw {freed}");
}
