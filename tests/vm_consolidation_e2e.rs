//! VM-consolidation e2e: the acceptance run of the hierarchical
//! virtual-platform subsystem (`crates/virt`).
//!
//! Two tenants share one host at a fixed total bandwidth (0.9): a
//! well-behaved 25 Hz victim and a noisy neighbour whose two tasks want
//! 1.9 CPUs. Claims under test (see `selftune_virt::demo`):
//!
//! * **(a) isolation** — under two-level CBS with per-guest self-tuning,
//!   the victim's deadline-miss rate stays within 2x of its solo-run
//!   baseline even while the neighbour saturates its own VM; the *flat*
//!   configuration of the same task set (one self-tuning manager, same
//!   total bound) exceeds that envelope, because supervisor compression
//!   there hits every task instead of staying inside the noisy tenant.
//! * **(b) throughput** — per-guest self-tuning completes at least as
//!   many jobs as the flat configuration at equal total bandwidth.

use selftune::simcore::time::Dur;
use selftune::virt::demo;

const SEED: u64 = 42;
const HORIZON: Dur = Dur::secs(10);

#[test]
fn hierarchical_isolation_beats_flat_at_equal_bandwidth() {
    let solo = demo::run_solo(HORIZON, SEED);
    let hier = demo::run_hierarchical(HORIZON, SEED);
    let flat = demo::run_flat(HORIZON, SEED);

    // The baseline is healthy: the victim alone in its VM misses (almost)
    // nothing and completes at its nominal 25 Hz.
    assert!(solo.miss_rate() < 0.1, "solo baseline {:?}", solo);
    assert!(solo.completions > 200, "solo baseline {:?}", solo);

    // (a) Isolation: the sibling VM's miss rate stays within 2x of the
    // solo baseline (with a small absolute floor for a near-zero
    // baseline)...
    let envelope = (2.0 * solo.miss_rate()).max(0.05);
    assert!(
        hier.victim.miss_rate() <= envelope,
        "hierarchical victim leaked: {:.4} > {envelope:.4} (solo {:.4})",
        hier.victim.miss_rate(),
        solo.miss_rate()
    );
    // ...while the flat configuration of the same task set blows through
    // it: compression under the neighbour's greed starves the victim.
    assert!(
        flat.victim.miss_rate() > envelope,
        "flat victim unexpectedly isolated: {:.4} <= {envelope:.4}",
        flat.victim.miss_rate()
    );
    // The noisy tenant saturated its VM in the hierarchical run — the
    // interference source was real.
    assert!(
        hier.noisy.miss_rate() > 0.9,
        "noisy tenant not saturating: {:.4}",
        hier.noisy.miss_rate()
    );

    // (b) Equal total bandwidth, at least flat's throughput: per-guest
    // self-tuning matches or beats the flat completion count...
    assert!(
        hier.completions() >= flat.completions(),
        "hierarchical completed less: {} < {}",
        hier.completions(),
        flat.completions()
    );
    // ...and the victim specifically recovers its full rate.
    assert!(
        hier.victim.completions > flat.victim.completions,
        "victim did not recover: {} vs flat {}",
        hier.victim.completions,
        flat.victim.completions
    );
}

#[test]
fn isolation_holds_across_seeds() {
    // The isolation claim is not a seed artefact.
    for seed in [7u64, 99] {
        let solo = demo::run_solo(HORIZON, seed);
        let hier = demo::run_hierarchical(HORIZON, seed);
        let flat = demo::run_flat(HORIZON, seed);
        let envelope = (2.0 * solo.miss_rate()).max(0.05);
        assert!(
            hier.victim.miss_rate() <= envelope,
            "seed {seed}: hier {:.4} > {envelope:.4}",
            hier.victim.miss_rate()
        );
        assert!(
            flat.victim.miss_rate() > envelope,
            "seed {seed}: flat {:.4} <= {envelope:.4}",
            flat.victim.miss_rate()
        );
        assert!(hier.completions() >= flat.completions(), "seed {seed}");
    }
}
