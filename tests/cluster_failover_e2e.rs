//! Log-shipped replication e2e: the leader streams the composed diurnal
//! run to a hot standby, every checkpoint mirrors byte for byte at 1, 2
//! and 8 follower threads, promotion after a mid-crowd leader crash
//! loses zero decisions, and a blind cold restart pays for the same
//! crash in deadline misses.

use selftune::cluster::prelude::*;
use selftune::cluster::runner::plan_fleet_pinned;
use selftune::distrib::prelude::*;

/// The composed diurnal fleet (all three control levels closed), as in
/// the `cluster_failover` experiment.
fn composed() -> ScenarioSpec {
    let mut spec = ScenarioSpec::diurnal_demo(6, 12);
    for vm in &mut spec.vms {
        vm.elastic = true;
    }
    spec.with_node_share(ScenarioSpec::diurnal_node_share())
        .with_rebalance(ScenarioSpec::diurnal_rebalance())
}

/// Leader run with the shipper attached: aggregates plus every frame.
fn ship(spec: &ScenarioSpec) -> (AggregateMetrics, Shipper<ChannelTransport>) {
    let (tx, _rx) = ChannelTransport::pair();
    let mut shipper = Shipper::new(tx, spec, 42, 2, Some(2));
    let leader = ClusterRunner::new(2).run_logged_with(spec, 42, &mut shipper);
    assert!(shipper.progress().finished);
    (leader, shipper)
}

#[test]
fn checkpoints_mirror_byte_identically_at_1_2_8_threads() {
    let spec = composed();
    let (leader, shipper) = ship(&spec);
    for threads in [1usize, 2, 8] {
        // Every Checkpoint frame re-executes the pinned prefix at the
        // follower's own thread count and byte-compares the mirror; a
        // mismatch would surface here as `StreamError::Divergence`.
        let mut follower = Follower::new(threads);
        for chunk in shipper.frames_from(0) {
            follower
                .feed(chunk)
                .unwrap_or_else(|e| panic!("clean stream at {threads} threads: {e}"));
        }
        let stats = follower.stats();
        assert!(stats.checkpoints >= 2, "stream carries checkpoints");
        assert_eq!(stats.divergences, 0);
        assert_eq!(
            follower.finale().expect("finished").summary_csv(),
            leader.summary_csv(),
            "replica finale must match the leader at {threads} threads"
        );
    }
}

#[test]
fn promotion_after_mid_crowd_crash_loses_zero_decisions() {
    let spec = composed();
    let (leader, shipper) = ship(&spec);
    let epochs = ClusterRunner::epoch_ends(&spec).len() - 1;
    let crash_epoch = epochs / 4; // flash-crowd onset, rebalancer not yet reacted

    // The standby saw everything up to and including the crash epoch.
    let mut standby = Follower::new(2);
    for chunk in shipper.frames_from(0) {
        match standby.feed(chunk).expect("prefix applies") {
            Applied::Epoch { epoch, .. } if epoch == crash_epoch => break,
            _ => {}
        }
    }
    assert!(
        standby.lag(&shipper.progress()).frames > 0,
        "crash is mid-stream"
    );

    // Promotion re-executes pinned-to-the-crash and decides live beyond:
    // byte-identical to the run the leader would have completed.
    let promoted = standby.promote().expect("standby promotes");
    assert_eq!(promoted.summary_csv(), leader.summary_csv());

    // The no-replica alternative: a restarted controller is blind (no
    // migrations) for an outage window right as the crowd needs moving.
    let replica = standby.journal().expect("replica journal");
    let plan = plan_fleet_pinned(&spec, 42, &replica.pinned_plan());
    let mut moves = replica.pinned_moves(Some(crash_epoch + 1));
    for slot in moves.epochs.iter_mut().skip(crash_epoch + 1).take(3) {
        *slot = Some(EpochDecision::default());
    }
    let cold = ClusterRunner::new(2).run_pinned(&spec, 42, &plan, &moves);
    assert!(
        cold.miss_ratio() > promoted.miss_ratio(),
        "cold restart must cost misses: {:.4} vs {:.4}",
        cold.miss_ratio(),
        promoted.miss_ratio()
    );
}

#[test]
fn gap_recovery_retransmits_and_converges() {
    let spec = composed();
    let (leader, shipper) = ship(&spec);
    let frames = shipper.frames_from(0);

    // Lose three frames mid-stream: the follower rejects the jump,
    // keeps its state, and asks from `expected_seq()` — exactly what
    // `frames_from` serves.
    let mut follower = Follower::new(2);
    let cut = frames.len() / 2;
    for chunk in &frames[..cut] {
        follower.feed(chunk).expect("prefix applies");
    }
    let err = follower.feed(&frames[cut + 3]).expect_err("gap detected");
    assert!(matches!(err, StreamError::Gap { expected, .. } if expected == cut as u64));

    for chunk in shipper.frames_from(follower.expected_seq()) {
        follower.feed(chunk).expect("retransmission applies");
    }
    let stats = follower.stats();
    assert_eq!(stats.gaps, 1);
    assert!(stats.retried >= 1, "the gapped chunk applied on retry");
    assert_eq!(
        follower.finale().expect("finished").summary_csv(),
        leader.summary_csv()
    );
}

#[test]
fn late_joiner_attaches_from_checkpoint() {
    let spec = composed();
    let (leader, shipper) = ship(&spec);

    // A first follower consumes everything and publishes its durable
    // resume point; text round-trip proves the checkpoint is shippable.
    let mut first = Follower::new(2);
    for chunk in shipper.frames_from(0) {
        first.feed(chunk).expect("clean stream");
    }
    let ckpt = first.last_checkpoint().expect("checkpoints on stream");
    let reloaded = Checkpoint::from_text(&ckpt.to_text()).expect("checkpoint parses");
    assert_eq!(&reloaded, ckpt);

    // A late joiner boots from the checkpoint (verifying it) and only
    // replays the suffix.
    let mut late = Follower::from_checkpoint(&reloaded, 2).expect("checkpoint verifies");
    assert!(reloaded.next_seq > 0);
    for chunk in shipper.frames_from(late.expected_seq()) {
        late.feed(chunk).expect("suffix applies");
    }
    assert_eq!(
        late.finale().expect("finished").summary_csv(),
        leader.summary_csv(),
        "late joiner converges to the leader byte for byte"
    );
}
