//! Period detection through the full stack (kernel → tracer → analyser)
//! for a spread of task rates, plus the aperiodic verdict.

use selftune::prelude::*;
use selftune::tracer::entry_times_secs;
use selftune_apps::{Aperiodic, PeriodicRt};
use selftune_spectrum::{amplitude_spectrum, detect};

fn detect_rate_of<W: Workload + 'static>(w: W, secs: u64) -> Option<f64> {
    let mut kernel = Kernel::new(ReservationScheduler::new());
    let (hook, reader) = Tracer::create(TracerConfig::default());
    kernel.install_hook(Box::new(hook));
    let tid = kernel.spawn("app", Box::new(w));
    kernel.run_until(Time::ZERO + Dur::secs(secs));
    let events = reader.drain();
    let times = entry_times_secs(&events, tid);
    let spec = amplitude_spectrum(&times, SpectrumConfig::default());
    detect(&spec, &PeakConfig::default()).detection.frequency()
}

#[test]
fn periodic_rates_across_the_band_are_detected() {
    // Periods from 12.5 to 50 ms (80 down to 20 Hz, inside the default
    // [18, 100] Hz grid).
    for (c_ms, p_ms) in [
        (2.0, 12.5),
        (3.0, 20.0),
        (5.0, 25.0),
        (8.0, 40.0),
        (10.0, 50.0),
    ] {
        let w = PeriodicRt::new(
            "p",
            Dur::from_ms_f64(c_ms),
            Dur::from_ms_f64(p_ms),
            0.05,
            Rng::new(17),
        );
        let f = detect_rate_of(w, 4).expect("detected");
        let expected = 1000.0 / p_ms;
        assert!(
            (f - expected).abs() < 0.5,
            "P={p_ms}ms: detected {f} Hz, expected {expected}"
        );
    }
}

#[test]
fn media_players_are_detected() {
    let video = MediaPlayer::new(MediaConfig::mplayer_video_25fps(), Rng::new(8));
    let f = detect_rate_of(video, 4).expect("video detected");
    assert!((f - 25.0).abs() < 0.5, "video at {f} Hz");

    let audio = MediaPlayer::new(MediaConfig::mplayer_mp3(), Rng::new(8));
    let f = detect_rate_of(audio, 4).expect("audio detected");
    assert!((f - 32.5).abs() < 0.5, "audio at {f} Hz");
}

#[test]
fn detection_is_fast() {
    // Figure 11: a tracing time as short as 200 ms already identifies the
    // rate within a few Hz.
    let audio = MediaPlayer::new(MediaConfig::mplayer_mp3(), Rng::new(8));
    let mut kernel = Kernel::new(ReservationScheduler::new());
    let (hook, reader) = Tracer::create(TracerConfig::default());
    kernel.install_hook(Box::new(hook));
    let tid = kernel.spawn("app", Box::new(audio));
    kernel.run_until(Time::ZERO + Dur::ms(200));
    let times = entry_times_secs(&reader.drain(), tid);
    let spec = amplitude_spectrum(&times, SpectrumConfig::default());
    let f = detect(&spec, &PeakConfig::default())
        .detection
        .frequency()
        .expect("detected at 200ms");
    assert!((f - 32.5).abs() < 3.0, "f = {f}");
}

#[test]
fn aperiodic_app_never_yields_a_confident_fundamental() {
    // A renewal process (exponential think times) has a broad spectral
    // bump, so the heuristic may nominate *some* frequency — but its
    // coherence (peak-to-mean ratio) stays far below that of a truly
    // periodic train, which is how callers grade the verdict.
    use selftune::spectrum::Detection;

    let coherence_of = |w: Box<dyn Workload>, secs: u64, seed_label: &str| -> f64 {
        let mut kernel = Kernel::new(ReservationScheduler::new());
        let (hook, reader) = Tracer::create(TracerConfig::default());
        kernel.install_hook(Box::new(hook));
        let tid = kernel.spawn(seed_label, w);
        kernel.run_until(Time::ZERO + Dur::secs(secs));
        let times = entry_times_secs(&reader.drain(), tid);
        let spec = amplitude_spectrum(&times, SpectrumConfig::default());
        match detect(&spec, &PeakConfig::default()).detection {
            Detection::Periodic { peak_to_mean, .. } => peak_to_mean,
            Detection::Aperiodic => 0.0,
        }
    };

    for seed in 0..4u64 {
        let ap = coherence_of(
            Box::new(Aperiodic::new(Dur::ms(23), Dur::ms(4), 5, Rng::new(seed))),
            3,
            "ap",
        );
        let per = coherence_of(
            Box::new(PeriodicRt::new(
                "p",
                Dur::ms(4),
                Dur::ms(30),
                0.05,
                Rng::new(seed),
            )),
            3,
            "per",
        );
        assert!(
            per > 2.0 * ap,
            "seed {seed}: periodic coherence {per} not ≫ aperiodic {ap}"
        );
        assert!(ap < 6.0, "seed {seed}: aperiodic coherence {ap} too high");
    }
}

#[test]
fn sub_band_task_is_served_through_a_submultiple_period() {
    // A 5 Hz task sits below the analyser band, but its harmonics are in
    // range: the detector locks onto one of them, i.e. a *submultiple* of
    // the true period — which Figure 1 shows is exactly as
    // bandwidth-efficient as the period itself. The task must end up
    // reserved and meeting its deadlines.
    let mut kernel = Kernel::new(ReservationScheduler::new());
    let (hook, reader) = Tracer::create(TracerConfig::default());
    kernel.install_hook(Box::new(hook));
    let slow = PeriodicRt::new("slow", Dur::ms(10), Dur::ms(200), 0.05, Rng::new(30));
    let tid = kernel.spawn("slow", Box::new(slow));
    let mut manager = SelfTuningManager::new(ManagerConfig::default(), reader);
    manager.manage(tid, "slow", ControllerConfig::default());
    manager.run(&mut kernel, Time::ZERO + Dur::secs(10));

    let p = manager
        .controller_of(tid)
        .and_then(|c| c.period())
        .expect("harmonic period detected")
        .as_ms_f64();
    let ratio = 200.0 / p;
    assert!(
        (ratio - ratio.round()).abs() < 0.05 && ratio >= 2.0,
        "detected {p} ms is not a submultiple of 200 ms"
    );
    assert!(manager.server_of(tid).is_some(), "task must be reserved");

    // Jobs keep completing on schedule in steady state.
    let marks = kernel.metrics().marks("slow.job");
    let gaps: Vec<f64> = marks[marks.len() / 2..]
        .windows(2)
        .map(|w| (w[1] - w[0]).as_ms_f64())
        .collect();
    let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
    assert!((mean - 200.0).abs() < 2.0, "steady job gap {mean} ms");
}
