//! Cluster e2e: feedback-driven re-placement under a skewed overload.
//!
//! The fleet analogue of the paper's core claim — observing *measured*
//! scheduling behaviour beats trusting nominal demand. A first-fit
//! placement packs every real-time task onto the first nodes; a hog burst
//! then hits exactly those nodes. Run once with placement frozen at
//! arrival (the pre-rebalance behaviour) and once with the feedback
//! rebalancer on, same seed: the feedback run must migrate tasks off the
//! melting nodes and end with strictly fewer fleet deadline misses.

use selftune::cluster::prelude::*;
use selftune::simcore::time::Dur;

const SEED: u64 = 42;

/// The canonical skewed-overload fleet (see
/// [`ScenarioSpec::skewed_overload_demo`]): the task kind *claims* 2 ms
/// jobs but burns 6 ms, so first-fit admission happily packs all twelve
/// onto node 0, which is then also hit by a fair-class hog burst.
fn scenario(rebalance_on: bool) -> ScenarioSpec {
    let spec = ScenarioSpec::skewed_overload_demo(4, 12);
    if rebalance_on {
        spec.with_rebalance(ScenarioSpec::demo_rebalance())
    } else {
        spec
    }
}

#[test]
fn feedback_replacement_cuts_fleet_misses_under_skewed_overload() {
    let frozen = ClusterRunner::new(2).run(&scenario(false), SEED);
    let feedback = ClusterRunner::new(2).run(&scenario(true), SEED);

    // The static run concentrates misses on the hog-bound node.
    assert!(
        frozen.misses() > 0,
        "skewed overload must cause misses without rebalance"
    );
    assert_eq!(frozen.rebalance.moves, 0);

    // The feedback run actually migrated work away...
    assert!(
        feedback.rebalance.moves >= 1,
        "expected at least one migration, got {}",
        feedback.rebalance.moves
    );
    assert!(feedback.rebalance.epochs > 0);

    // ...and it strictly reduced fleet deadline misses — in absolute
    // count, in rate, and while completing *more* jobs.
    assert!(
        feedback.misses() < frozen.misses(),
        "feedback placement must cut misses: {} (feedback) vs {} (frozen)",
        feedback.misses(),
        frozen.misses()
    );
    assert!(
        feedback.miss_ratio() < frozen.miss_ratio(),
        "feedback placement must cut the miss rate: {:.4} vs {:.4}",
        feedback.miss_ratio(),
        frozen.miss_ratio()
    );
    assert!(
        feedback.completions() > frozen.completions(),
        "unblocking the melted node must raise throughput"
    );

    // Every applied migration respected the destination admission bound.
    for r in &feedback.rebalance.records {
        assert!(
            r.dest_reserved_after <= 0.9 + 1e-9,
            "migration overbooked node {}: {}",
            r.to,
            r.dest_reserved_after
        );
        assert_ne!(r.from, r.to, "migration must change nodes");
    }

    // Migrated incarnations show up in the post-migration CDF.
    assert!(!feedback.post_migration_cdf().is_empty());
}

#[test]
fn rebalanced_runs_are_thread_count_invariant() {
    let spec = scenario(true);
    let serial = ClusterRunner::new(1).run(&spec, SEED);
    let parallel = ClusterRunner::new(4).run(&spec, SEED);
    assert_eq!(serial.summary_csv(), parallel.summary_csv());
    assert!(serial.rebalance.moves >= 1);
}

#[test]
fn warm_start_shrinks_the_hand_over_gap() {
    // Same feedback loop, hand-over state carried vs. re-detected: the
    // mean arrival-to-attach delay of migrated incarnations must shrink.
    // A cold destination re-runs period detection (≥ one sampling period);
    // a warm one attaches the moment the task lands.
    let warm_spec = scenario(true); // demo_rebalance carries state
    assert!(warm_spec.rebalance.warm_start);
    let cold_spec = warm_spec.clone().with_rebalance(RebalanceSpec {
        warm_start: false,
        ..ScenarioSpec::demo_rebalance()
    });

    let warm = ClusterRunner::new(2).run(&warm_spec, SEED);
    let cold = ClusterRunner::new(2).run(&cold_spec, SEED);
    assert!(warm.rebalance.moves >= 1 && cold.rebalance.moves >= 1);

    let warm_gap = warm
        .mean_migrated_attach_delay_ms()
        .expect("warm migrations attached");
    let cold_gap = cold
        .mean_migrated_attach_delay_ms()
        .expect("cold migrations attached");
    assert!(
        warm_gap < cold_gap,
        "hand-over gap must shrink: warm {warm_gap:.1} ms vs cold {cold_gap:.1} ms"
    );
    // Warm incarnations attach the instant they land.
    assert!(warm_gap < 1.0, "warm hand-over gap {warm_gap:.1} ms");
    // And the cold gap is real detection latency, not noise.
    assert!(cold_gap >= 500.0, "cold hand-over gap {cold_gap:.1} ms");
}

/// The skewed-overload fleet with a whole virtual platform packed onto
/// the melting node: the VM (the largest booked unit there) is what the
/// rebalancer evicts first.
fn vm_scenario(warm_start: bool) -> ScenarioSpec {
    ScenarioSpec::skewed_overload_demo(4, 12)
        .with_vm(VmSpec::uniform(
            Dur::ms(4),
            Dur::ms(10),
            2,
            TaskKind::PeriodicRt {
                wcet: Dur::ms(4),
                period: Dur::ms(40),
            },
        ))
        .with_rebalance(RebalanceSpec {
            warm_start,
            ..ScenarioSpec::demo_rebalance()
        })
}

#[test]
fn migrated_vm_guests_warm_start_inside_the_readmitted_vm() {
    let warm = ClusterRunner::new(2).run(&vm_scenario(true), SEED);
    let cold = ClusterRunner::new(2).run(&vm_scenario(false), SEED);

    // A whole VM actually moved in both runs (the hand-over comparison is
    // about the same migration, warm vs cold).
    assert!(
        warm.rebalance.records.iter().any(|r| r.vm),
        "expected a VM migration, got {:?}",
        warm.rebalance.records
    );
    assert!(cold.rebalance.records.iter().any(|r| r.vm));

    // Per-guest warm start: the re-admitted guests attach the instant the
    // VM lands — the hand-over gap collapses to zero...
    let warm_gap = warm
        .mean_migrated_vm_guest_attach_delay_ms()
        .expect("warm VM guests attached");
    assert!(warm_gap < 1.0, "warm guest hand-over gap {warm_gap:.1} ms");
    // ...while cold guests re-run detection inside the re-admitted VM.
    let cold_gap = cold
        .mean_migrated_vm_guest_attach_delay_ms()
        .expect("cold VM guests attached");
    assert!(
        cold_gap >= 500.0,
        "cold guest hand-over gap {cold_gap:.1} ms"
    );

    // The flat-task hand-over metric no longer blends guest delays: in
    // the warm run it stays a pure task metric (and also collapses), even
    // though VM guests report through their own channel.
    if let Some(task_gap) = warm.mean_migrated_attach_delay_ms() {
        assert!(task_gap < 1.0, "task hand-over gap {task_gap:.1} ms");
    }
    let csv = warm.summary_csv();
    assert!(
        csv.contains("vm_guest_attach_delay_ms"),
        "guest hand-over channel missing from the aggregate"
    );
}
