//! Journal e2e: the checked-in 10k-node fixture replays byte for byte.
//!
//! `examples/megafleet.journal` is a recorded run of the megafleet demo
//! (10 000 nodes, 400 lying tasks, feedback rebalancer on), generated
//! with:
//!
//! ```bash
//! cargo run --release --bin cluster_megafleet -- \
//!     --smoke --journal examples/megafleet.journal
//! ```
//!
//! It pins this PR's whole fleet-scale hot path — bucketed placement
//! index, arena node state, batched epoch arrivals — to bytes recorded
//! before any future refactor: if replay of the fixture ever diverges,
//! either the simulation's determinism or its decision logic changed.

use selftune::journal::prelude::*;

fn fixture() -> Journal {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples/megafleet.journal"
    ))
    .expect("checked-in megafleet journal");
    Journal::from_text(&text).expect("megafleet journal parses")
}

#[test]
fn megafleet_fixture_replays_byte_identically() {
    let journal = fixture();
    assert_eq!(journal.scenario.nodes, 10_000);
    assert!(
        journal.records.len() > 400,
        "fixture should hold placements and moves, got {}",
        journal.records.len()
    );

    let replayed = Replayer::new(2)
        .verify(&journal)
        .unwrap_or_else(|e| panic!("megafleet fixture diverged: {e}"));
    assert!(replayed.rebalance.moves >= 1);

    // The text form is a fixed point: re-encoding the parsed fixture
    // reproduces the file, so nobody can hand-edit it unnoticed.
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples/megafleet.journal"
    ))
    .unwrap();
    assert_eq!(journal.to_text(), text);
}
