//! Tracer integrity through the full kernel: every issued syscall is
//! observed exactly once per edge, in timestamp order, honouring filters.

use selftune::prelude::*;
use selftune::tracer::{counts_by_call, Edge};
use selftune_simcore::task::Script;

#[test]
fn every_syscall_is_traced_once_per_edge() {
    let mut kernel = Kernel::new(ReservationScheduler::new());
    let (hook, reader) = Tracer::create(TracerConfig::default());
    kernel.install_hook(Box::new(hook));

    let script = Script::forever(vec![
        Action::syscall(SyscallNr::Read),
        Action::Compute(Dur::ms(1)),
        Action::syscall(SyscallNr::Ioctl),
        Action::SleepFor(Dur::ms(3)),
    ]);
    let tid = kernel.spawn("scripted", Box::new(script));
    kernel.run_until(Time::ZERO + Dur::secs(1));

    let issued = kernel.syscall_count(tid);
    let events = reader.drain();
    let enters = events.iter().filter(|e| e.edge == Edge::Enter).count() as u64;
    let exits = events.iter().filter(|e| e.edge == Edge::Exit).count() as u64;
    assert_eq!(enters, issued);
    // The final call may still be in flight at the horizon.
    assert!(
        exits == issued || exits + 1 == issued,
        "{exits} vs {issued}"
    );

    // Timestamps are monotone.
    assert!(events.windows(2).all(|w| w[0].at <= w[1].at));

    // Counts split evenly between the two calls in the loop.
    let counts = counts_by_call(&events);
    assert_eq!(counts.len(), 2);
    assert!((counts[0].1 as i64 - counts[1].1 as i64).abs() <= 1);
}

#[test]
fn blocking_syscall_exit_is_stamped_at_wake() {
    let mut kernel = Kernel::new(ReservationScheduler::new());
    let (hook, reader) = Tracer::create(TracerConfig::default());
    kernel.install_hook(Box::new(hook));

    let script = Script::once(vec![
        Action::Syscall {
            nr: SyscallNr::Nanosleep,
            kernel: Dur::us(2),
            block: Blocking::For(Dur::ms(10)),
        },
        Action::Exit,
    ]);
    kernel.spawn("sleeper", Box::new(script));
    kernel.run_until(Time::ZERO + Dur::ms(50));

    let events = reader.drain();
    assert_eq!(events.len(), 2);
    assert_eq!(events[0].edge, Edge::Enter);
    assert_eq!(events[1].edge, Edge::Exit);
    let span = events[1].at - events[0].at;
    assert!(span >= Dur::ms(10), "blocking span {span}");
}

#[test]
fn filters_hold_under_concurrency() {
    let mut kernel = Kernel::new(ReservationScheduler::new());
    let (hook, reader) = Tracer::create(TracerConfig::default());
    kernel.install_hook(Box::new(hook));

    let mk = |nr| Script::forever(vec![Action::syscall(nr), Action::SleepFor(Dur::ms(2))]);
    let a = kernel.spawn("a", Box::new(mk(SyscallNr::Read)));
    let b = kernel.spawn("b", Box::new(mk(SyscallNr::Write)));
    let _c = kernel.spawn("c", Box::new(mk(SyscallNr::Ioctl)));
    reader.set_filter(TraceFilter::tasks_only([a, b]));

    kernel.run_until(Time::ZERO + Dur::secs(1));
    let events = reader.drain();
    assert!(!events.is_empty());
    assert!(events.iter().all(|e| e.task == a || e.task == b));
    let counts = counts_by_call(&events);
    let names: Vec<&str> = counts.iter().map(|&(nr, _)| nr.name()).collect();
    assert!(names.contains(&"read") && names.contains(&"write"));
    assert!(!names.contains(&"ioctl"));
}

#[test]
fn ring_overflow_keeps_newest_events() {
    let mut kernel = Kernel::new(ReservationScheduler::new());
    let (hook, reader) = Tracer::create(TracerConfig {
        capacity: 64,
        ..TracerConfig::default()
    });
    kernel.install_hook(Box::new(hook));
    let script = Script::forever(vec![
        Action::syscall(SyscallNr::Read),
        Action::Compute(Dur::us(100)),
    ]);
    kernel.spawn("chatty", Box::new(script));
    kernel.run_until(Time::ZERO + Dur::ms(100));

    assert!(reader.total_dropped() > 0, "expected overflow");
    let events = reader.drain();
    assert_eq!(events.len(), 64);
    // The retained events are the most recent ones.
    let last = events.last().unwrap().at;
    assert!(last >= Time::ZERO + Dur::ms(99), "latest at {last}");
}

#[test]
fn disabled_tracer_costs_nothing_and_records_nothing() {
    let run = |enabled: bool| {
        let mut kernel = Kernel::new(ReservationScheduler::new());
        let (hook, reader) = Tracer::create(TracerConfig::default());
        reader.set_enabled(enabled);
        kernel.install_hook(Box::new(hook));
        let script = Script::once(vec![
            Action::syscall(SyscallNr::Read),
            Action::Compute(Dur::ms(5)),
            Action::syscall(SyscallNr::Write),
            Action::Exit,
        ]);
        let tid = kernel.spawn("t", Box::new(script));
        kernel.run_until(Time::ZERO + Dur::ms(50));
        (kernel.thread_time(tid), reader.pending())
    };
    let (with_time, with_events) = run(true);
    let (without_time, without_events) = run(false);
    assert!(with_events > 0);
    assert_eq!(without_events, 0);
    assert!(with_time > without_time, "{with_time} vs {without_time}");
}
