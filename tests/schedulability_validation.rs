//! Cross-validation of the analytical crate against the simulator: the
//! budgets the analysis declares sufficient must produce no deadline
//! misses in simulation, and clearly insufficient budgets must fail.

use selftune::analysis::{min_budget_single, PeriodicTask};
use selftune::prelude::*;
use selftune_apps::PeriodicRt;
use selftune_sched::EdfScheduler;

/// Runs a periodic task (C, P) inside a server (Q, T) for `secs` seconds
/// and returns the worst observed job completion lateness in ms (jobs
/// complete when their mark fires; the implicit deadline is the next
/// release).
fn worst_lateness_ms(c_ms: f64, p_ms: f64, q_ms: f64, t_ms: f64, secs: u64) -> f64 {
    let mut kernel = Kernel::new(ReservationScheduler::new());
    let period = Dur::from_ms_f64(p_ms);
    let sid = kernel.sched_mut().create_server(ServerConfig::new(
        Dur::from_ms_f64(q_ms),
        Dur::from_ms_f64(t_ms),
    ));
    let w = PeriodicRt::new("t", Dur::from_ms_f64(c_ms), period, 0.0, Rng::new(9));
    let tid = kernel.spawn("t", Box::new(w));
    kernel.sched_mut().place(tid, Place::Server(sid));
    kernel.run_until(Time::ZERO + Dur::secs(secs));

    let marks = kernel.metrics().marks("t.job");
    assert!(!marks.is_empty(), "task made no progress");
    // Job k (0-based) is released at k·P and must finish by (k+1)·P.
    marks
        .iter()
        .enumerate()
        .map(|(k, &done)| {
            let deadline = Time::ZERO + period * (k as u64 + 1);
            done.saturating_since(deadline).as_ms_f64()
        })
        .fold(0.0_f64, f64::max)
}

#[test]
fn analysis_budget_is_sufficient_in_simulation() {
    let task = PeriodicTask::new(20.0, 100.0);
    for t_ms in [100.0, 50.0, 40.0, 60.0, 150.0] {
        let q = min_budget_single(task, t_ms) + 0.05; // tiny safety margin
        let late = worst_lateness_ms(20.0, 100.0, q, t_ms, 10);
        assert!(
            late <= 0.2,
            "T^s={t_ms}: lateness {late} ms with analysed budget {q}"
        );
    }
}

#[test]
fn undersized_budget_misses_in_simulation() {
    let task = PeriodicTask::new(20.0, 100.0);
    // 60% of the analysed budget cannot sustain the demand.
    let q = min_budget_single(task, 100.0) * 0.6;
    let late = worst_lateness_ms(20.0, 100.0, q, 100.0, 10);
    assert!(late > 10.0, "lateness {late} ms should be large");
}

#[test]
fn edf_keeps_feasible_taskset_on_time() {
    // Classic result: implicit-deadline periodic tasks with U ≤ 1 are
    // EDF-schedulable; the simulator must agree.
    let mut kernel = Kernel::new(EdfScheduler::new());
    let set = [(3.0, 15.0), (5.0, 20.0), (5.0, 30.0), (4.0, 24.0)];
    let mut rng = Rng::new(4);
    for (i, &(c, p)) in set.iter().enumerate() {
        let w = PeriodicRt::new(
            &format!("t{i}"),
            Dur::from_ms_f64(c),
            Dur::from_ms_f64(p),
            0.0,
            rng.fork(),
        );
        let tid = kernel.spawn(&format!("t{i}"), Box::new(w));
        kernel
            .sched_mut()
            .set_relative_deadline(tid, Dur::from_ms_f64(p));
    }
    kernel.run_until(Time::ZERO + Dur::secs(20));
    assert_eq!(
        kernel.sched().deadline_misses(),
        0,
        "EDF missed deadlines on a feasible set (U ≈ 0.78)"
    );
    assert!(kernel.sched().completions() > 2000);
}

#[test]
fn edf_overload_misses() {
    let mut kernel = Kernel::new(EdfScheduler::new());
    let set = [(8.0, 10.0), (8.0, 20.0)]; // U = 1.2
    let mut rng = Rng::new(4);
    for (i, &(c, p)) in set.iter().enumerate() {
        let w = PeriodicRt::new(
            &format!("t{i}"),
            Dur::from_ms_f64(c),
            Dur::from_ms_f64(p),
            0.0,
            rng.fork(),
        );
        let tid = kernel.spawn(&format!("t{i}"), Box::new(w));
        kernel
            .sched_mut()
            .set_relative_deadline(tid, Dur::from_ms_f64(p));
    }
    kernel.run_until(Time::ZERO + Dur::secs(5));
    assert!(kernel.sched().deadline_misses() > 0);
}

#[test]
fn cbs_isolates_a_misbehaving_task() {
    // A CPU hog in a 30% reservation cannot hurt a well-reserved task —
    // the temporal-protection property the whole paper builds on.
    let mut kernel = Kernel::new(ReservationScheduler::new());
    let hog_sid = kernel
        .sched_mut()
        .create_server(ServerConfig::new(Dur::ms(3), Dur::ms(10)));
    let hog = kernel.spawn("hog", Box::new(CpuHog::new(Dur::ms(50))));
    kernel.sched_mut().place(hog, Place::Server(hog_sid));

    let rt_sid = kernel
        .sched_mut()
        .create_server(ServerConfig::new(Dur::ms(21), Dur::ms(100)));
    let rt = PeriodicRt::new("rt", Dur::ms(20), Dur::ms(100), 0.0, Rng::new(2));
    let rt_tid = kernel.spawn("rt", Box::new(rt));
    kernel.sched_mut().place(rt_tid, Place::Server(rt_sid));

    kernel.run_until(Time::ZERO + Dur::secs(10));

    // The hog consumed ≈ its 30% and no more.
    let hog_frac = kernel.thread_time(hog).ratio(Dur::secs(10));
    assert!((hog_frac - 0.3).abs() < 0.02, "hog got {hog_frac}");

    // The RT task completed every job by its deadline.
    let marks = kernel.metrics().marks("rt.job");
    assert!(marks.len() >= 99, "{} jobs", marks.len());
    for (k, &done) in marks.iter().enumerate() {
        let deadline = Time::ZERO + Dur::ms(100) * (k as u64 + 1);
        assert!(
            done <= deadline + Dur::ms(1),
            "job {k} finished at {done} past {deadline}"
        );
    }
}
