//! The Section 6 extension: period detection from blocked→ready scheduler
//! transitions instead of syscall timestamps.
//!
//! The paper suggests wake events "promise to be more closely related to
//! the task temporal behaviour": a periodic task wakes exactly once per
//! job, so the wake train is a cleaner comb than the syscall bursts.

use selftune::prelude::*;
use selftune::spectrum::{amplitude_spectrum, detect};
use selftune::tracer::{entry_times_secs, wake_times_secs};

#[test]
fn wake_events_identify_the_period() {
    let mut kernel = Kernel::new(ReservationScheduler::new());
    let (hook, reader) = Tracer::create(TracerConfig {
        trace_sched_events: true,
        ..TracerConfig::default()
    });
    kernel.install_hook(Box::new(hook));
    let player = MediaPlayer::new(MediaConfig::mplayer_mp3(), Rng::new(6));
    let tid = kernel.spawn("mp3", Box::new(player));
    kernel.run_until(Time::ZERO + Dur::secs(3));

    let events = reader.drain();
    let wakes = wake_times_secs(&events, tid);
    // One or two wakes per 30.77 ms job over 3 s.
    assert!(wakes.len() >= 90, "{} wakes", wakes.len());

    let spec = amplitude_spectrum(&wakes, SpectrumConfig::default());
    let f = detect(&spec, &PeakConfig::default())
        .detection
        .frequency()
        .expect("periodic from wake events");
    assert!((f - 32.5).abs() < 0.5, "detected {f} Hz from wakes");
}

#[test]
fn wake_train_is_sparser_than_syscall_train() {
    // The wake source yields far fewer events for the same detection
    // quality — lower analyser cost (Equation (3) scales with N).
    let mut kernel = Kernel::new(ReservationScheduler::new());
    let (hook, reader) = Tracer::create(TracerConfig {
        trace_sched_events: true,
        ..TracerConfig::default()
    });
    kernel.install_hook(Box::new(hook));
    let player = MediaPlayer::new(MediaConfig::mplayer_mp3(), Rng::new(6));
    let tid = kernel.spawn("mp3", Box::new(player));
    kernel.run_until(Time::ZERO + Dur::secs(3));

    let events = reader.drain();
    let wakes = wake_times_secs(&events, tid);
    let entries = entry_times_secs(&events, tid);
    assert!(
        entries.len() > 4 * wakes.len(),
        "{} entries vs {} wakes",
        entries.len(),
        wakes.len()
    );
}

#[test]
fn wake_tracing_is_off_by_default() {
    let mut kernel = Kernel::new(ReservationScheduler::new());
    let (hook, reader) = Tracer::create(TracerConfig::default());
    kernel.install_hook(Box::new(hook));
    let player = MediaPlayer::new(MediaConfig::mplayer_mp3(), Rng::new(6));
    let tid = kernel.spawn("mp3", Box::new(player));
    kernel.run_until(Time::ZERO + Dur::secs(1));
    let events = reader.drain();
    assert!(wake_times_secs(&events, tid).is_empty());
    assert!(!entry_times_secs(&events, tid).is_empty());
}
