//! Figure 2's setting validated in simulation: the paper's three tasks
//! (3/15, 5/20, 5/30 ms) scheduled rate-monotonically inside a single CBS
//! reservation dimensioned by the analysis.

use selftune::analysis::{min_budget_rm_group, PeriodicTask};
use selftune::prelude::*;
use selftune::sched::{rate_monotonic, InnerPolicy};
use selftune_apps::PeriodicRt;

fn paper_tasks() -> Vec<PeriodicTask> {
    vec![
        PeriodicTask::new(3.0, 15.0),
        PeriodicTask::new(5.0, 20.0),
        PeriodicTask::new(5.0, 30.0),
    ]
}

/// Runs the three tasks in one server `(q_ms, t_ms)` and returns the
/// worst lateness (ms) across all jobs of all tasks.
fn group_worst_lateness(q_ms: f64, t_ms: f64, secs: u64) -> f64 {
    let mut kernel = Kernel::new(ReservationScheduler::new());
    let cfg = ServerConfig::new(Dur::from_ms_f64(q_ms), Dur::from_ms_f64(t_ms))
        .with_policy(InnerPolicy::FixedPriority);
    let sid = kernel.sched_mut().create_server(cfg);

    let specs = [(3.0, 15.0), (5.0, 20.0), (5.0, 30.0)];
    let mut ids = Vec::new();
    for (i, &(c, p)) in specs.iter().enumerate() {
        let w = PeriodicRt::new(
            &format!("t{i}"),
            Dur::from_ms_f64(c),
            Dur::from_ms_f64(p),
            0.0,
            Rng::new(7 + i as u64),
        );
        let tid = kernel.spawn(&format!("t{i}"), Box::new(w));
        kernel.sched_mut().place(tid, Place::Server(sid));
        ids.push((tid, p));
    }
    // Rate-monotonic priorities inside the server.
    let prios = rate_monotonic(
        &ids.iter()
            .map(|&(t, p)| (t, Dur::from_ms_f64(p)))
            .collect::<Vec<_>>(),
    );
    for (t, prio) in prios {
        kernel
            .sched_mut()
            .server_mut(sid)
            .set_task_priority(t, prio);
    }
    kernel.run_until(Time::ZERO + Dur::secs(secs));

    let mut worst: f64 = 0.0;
    for (i, &(_, p)) in ids.iter().enumerate() {
        let marks = kernel.metrics().marks(&format!("t{i}.job"));
        assert!(!marks.is_empty(), "t{i} made no progress");
        for (k, &done) in marks.iter().enumerate() {
            let deadline = Time::ZERO + Dur::from_ms_f64(p) * (k as u64 + 1);
            worst = worst.max(done.saturating_since(deadline).as_ms_f64());
        }
    }
    worst
}

#[test]
fn analysed_group_budget_schedules_all_three_tasks() {
    let tasks = paper_tasks();
    for t_ms in [5.0, 10.0, 15.0] {
        let q = min_budget_rm_group(&tasks, t_ms).expect("feasible") + 0.1;
        let late = group_worst_lateness(q, t_ms, 6);
        // Syscall bodies add a small unmodelled demand; allow sub-ms slack.
        assert!(
            late < 1.0,
            "T^s={t_ms}: lateness {late} ms at analysed budget {q}"
        );
    }
}

#[test]
fn starved_group_budget_misses() {
    let tasks = paper_tasks();
    let t_ms = 10.0;
    let q = min_budget_rm_group(&tasks, t_ms).expect("feasible") * 0.7;
    let late = group_worst_lateness(q, t_ms, 6);
    assert!(late > 5.0, "lateness {late} ms should be substantial");
}

#[test]
fn dedicated_servers_cost_the_utilisation() {
    // The same three tasks in per-task servers at (Q = C·(1+ε), T = P)
    // meet deadlines at barely more than the cumulative 62%.
    let mut kernel = Kernel::new(ReservationScheduler::new());
    let specs = [(3.0, 15.0), (5.0, 20.0), (5.0, 30.0)];
    let mut ids = Vec::new();
    for (i, &(c, p)) in specs.iter().enumerate() {
        // 6% margin covers the tasks' syscall-body costs.
        let sid = kernel.sched_mut().create_server(ServerConfig::new(
            Dur::from_ms_f64(c * 1.06),
            Dur::from_ms_f64(p),
        ));
        let w = PeriodicRt::new(
            &format!("d{i}"),
            Dur::from_ms_f64(c),
            Dur::from_ms_f64(p),
            0.0,
            Rng::new(40 + i as u64),
        );
        let tid = kernel.spawn(&format!("d{i}"), Box::new(w));
        kernel.sched_mut().place(tid, Place::Server(sid));
        ids.push((i, p));
    }
    let total = kernel.sched().total_reserved_bandwidth();
    assert!(total < 0.66, "dedicated total {total}");

    kernel.run_until(Time::ZERO + Dur::secs(6));
    for &(i, p) in &ids {
        let marks = kernel.metrics().marks(&format!("d{i}.job"));
        for (k, &done) in marks.iter().enumerate() {
            let deadline = Time::ZERO + Dur::from_ms_f64(p) * (k as u64 + 1);
            let late = done.saturating_since(deadline).as_ms_f64();
            assert!(late < 0.5, "d{i} job {k} late by {late} ms");
        }
    }
}
