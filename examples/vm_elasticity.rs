//! Elastic VM shares: the host-level feedback loop in action.
//!
//! ```text
//! cargo run --release --example vm_elasticity
//! ```
//!
//! Two tenants start at equal 0.45 shares. The *phased* tenant's guest
//! goes idle 40% into the run; the *hungry* tenant's guests want 0.6.
//! With static admission the hungry tenant stays compressed forever while
//! the idle share goes dark; with each VM under a `VmShareController` the
//! idle bandwidth is reclaimed and re-granted. A third run makes a
//! runaway tenant elastic: its grants are pinned at the host cap and the
//! statically-shared sibling keeps its solo miss rate.

use selftune::simcore::time::Dur;
use selftune::virt::demo;

fn main() {
    let horizon = Dur::secs(20);
    let seed = 42;

    let stat = demo::run_two_phase(horizon, seed, false);
    let elas = demo::run_two_phase(horizon, seed, true);

    println!("Idle-phase reclaim (equal total admitted bandwidth 0.9):");
    println!(
        "  static   phased: {:>4} jobs, miss {:.3}, final share {:.2}   hungry: {:>4} jobs, miss {:.3}, final share {:.2}",
        stat.phased.completions,
        stat.phased.miss_rate(),
        stat.phased_share,
        stat.hungry.completions,
        stat.hungry.miss_rate(),
        stat.hungry_share,
    );
    println!(
        "  elastic  phased: {:>4} jobs, miss {:.3}, final share {:.2}   hungry: {:>4} jobs, miss {:.3}, final share {:.2}",
        elas.phased.completions,
        elas.phased.miss_rate(),
        elas.phased_share,
        elas.hungry.completions,
        elas.hungry.miss_rate(),
        elas.hungry_share,
    );

    let run = demo::run_runaway(horizon, seed);
    let solo = demo::run_solo(horizon, seed);
    println!("\nRunaway containment:");
    println!(
        "  victim (static 0.60 share): miss {:.3} vs solo baseline {:.3}",
        run.victim.miss_rate(),
        solo.miss_rate()
    );
    println!(
        "  runaway (elastic, wants 1.9 CPUs): peak granted share {:.3} — pinned at the host cap",
        run.runaway_peak_share
    );
    println!(
        "\nThe hungry sibling gained {} completions from the reclaimed idle\n\
         share; the runaway tenant could grow only into genuine slack.",
        elas.hungry.completions - stat.hungry.completions
    );
}
