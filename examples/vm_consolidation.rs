//! Two tenants consolidated onto one host under hierarchical scheduling:
//! a well-behaved 25 Hz application in one VM, a noisy neighbour in
//! another — each VM a CBS share containing its own self-tuning manager.
//!
//! ```text
//! cargo run --release --example vm_consolidation
//! ```
//!
//! The host supervisor arbitrates bandwidth *across* the tenants (fixed
//! shares under Σ Q/T ≤ U_lub); each tenant's manager detects periods and
//! adapts budgets *inside* its share, so the neighbour's overload
//! compresses only its own tasks. The same task set under one flat
//! manager — same total bandwidth — melts the victim instead.

use selftune::simcore::time::Dur;
use selftune::virt::demo;

fn main() {
    let horizon = Dur::secs(12);
    let seed = 42;

    let solo = demo::run_solo(horizon, seed);
    let hier = demo::run_hierarchical(horizon, seed);
    let flat = demo::run_flat(horizon, seed);

    println!(
        "VM consolidation at equal total bandwidth ({:.0}%):",
        100.0 * demo::TOTAL_BANDWIDTH
    );
    println!(
        "  solo baseline   victim: {:>4} jobs, miss rate {:.3}",
        solo.completions,
        solo.miss_rate()
    );
    println!(
        "  hierarchical    victim: {:>4} jobs, miss rate {:.3}   noisy: {:>4} jobs, miss rate {:.3}",
        hier.victim.completions,
        hier.victim.miss_rate(),
        hier.noisy.completions,
        hier.noisy.miss_rate()
    );
    println!(
        "  flat            victim: {:>4} jobs, miss rate {:.3}   noisy: {:>4} jobs, miss rate {:.3}",
        flat.victim.completions,
        flat.victim.miss_rate(),
        flat.noisy.completions,
        flat.noisy.miss_rate()
    );
    println!(
        "  totals: hierarchical {} vs flat {} completions",
        hier.completions(),
        flat.completions()
    );
    println!(
        "\nThe noisy tenant saturates its VM either way; only the flat\n\
         configuration lets that saturation compress the victim's grant."
    );
}
