//! A jittery RTP-style network stream under self-tuning scheduling: the
//! analyser must recover the 30 fps nominal rate despite ±10% arrival
//! jitter, and the controller must reserve for the decode demand.
//!
//! ```text
//! cargo run --release --example network_stream
//! ```

use selftune::prelude::*;

fn main() {
    let mut kernel = Kernel::new(ReservationScheduler::new());
    let (hook, reader) = Tracer::create(TracerConfig::default());
    kernel.install_hook(Box::new(hook));
    let mut rng = Rng::new(23);

    let cfg = StreamerConfig::rtp_video_30fps();
    println!(
        "stream: nominal {} fps, arrival jitter σ = {:.0}% of the period",
        cfg.rate_hz,
        100.0 * cfg.jitter_frac
    );
    let tid = kernel.spawn("stream", Box::new(Streamer::new(cfg, rng.fork())));

    // A CPU hog in the fair class to make the reservation matter.
    kernel.spawn("hog", Box::new(CpuHog::new(Dur::ms(10))));

    let mut manager = SelfTuningManager::new(ManagerConfig::default(), reader);
    manager.manage(tid, "stream", ControllerConfig::default());
    manager.run(&mut kernel, Time::ZERO + Dur::secs(12));

    let period = manager
        .controller_of(tid)
        .and_then(|c| c.period())
        .expect("period detected despite jitter");
    let bw = manager
        .server_of(tid)
        .map(|sid| kernel.sched().server(sid).config().bandwidth())
        .expect("reservation created");
    println!(
        "detected period {:.2} ms (nominal 33.33), reserved {:.1}%",
        period.as_ms_f64(),
        100.0 * bw
    );

    let ift = kernel.metrics().inter_mark_times_ms("stream.frame");
    let steady = &ift[ift.len() / 2..];
    let mean = steady.iter().sum::<f64>() / steady.len() as f64;
    println!(
        "steady inter-frame time {:.2} ms over {} frames (hog gets the rest)",
        mean,
        ift.len() + 1
    );
    assert!((period.as_ms_f64() - 33.33).abs() < 1.0);
    assert!((mean - 33.33).abs() < 1.5);
}
