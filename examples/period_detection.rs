//! Using the period analyser as a standalone library: trace any workload,
//! inspect its amplitude spectrum, and extract the activation period —
//! the paper's Section 4.2–4.3 pipeline in isolation.
//!
//! ```text
//! cargo run --example period_detection
//! ```

use selftune::prelude::*;
use selftune::spectrum::{amplitude_spectrum, detect, Detection};
use selftune::tracer::entry_times_secs;
use selftune_apps::{Aperiodic, PeriodicRt};

fn analyse(name: &str, workload: Box<dyn Workload>, secs: u64) {
    let mut kernel = Kernel::new(ReservationScheduler::new());
    let (hook, reader) = Tracer::create(TracerConfig::default());
    kernel.install_hook(Box::new(hook));
    let tid = kernel.spawn(name, workload);
    kernel.run_until(Time::ZERO + Dur::secs(secs));

    let times = entry_times_secs(&reader.drain(), tid);
    let spectrum = amplitude_spectrum(&times, SpectrumConfig::default());
    let analysis = detect(&spectrum, &PeakConfig::default());

    println!("\n== {name}: {} traced events over {secs}s ==", times.len());
    // A coarse ASCII rendering of the normalised spectrum.
    let norm = spectrum.normalized();
    let cols = 64;
    let per_col = norm.len() / cols;
    print!(
        "  spectrum {:.0}..{:.0} Hz: ",
        spectrum.config.f_min, spectrum.config.f_max
    );
    for c in 0..cols {
        let v = norm[c * per_col..(c + 1) * per_col]
            .iter()
            .copied()
            .fold(0.0_f64, f64::max);
        let glyph = match (v * 5.0) as u32 {
            0 => ' ',
            1 => '.',
            2 => ':',
            3 => '+',
            4 => '#',
            _ => '@',
        };
        print!("{glyph}");
    }
    println!();
    match analysis.detection {
        Detection::Periodic {
            frequency,
            peak_to_mean,
            candidates,
            ..
        } => println!(
            "  verdict: PERIODIC at {frequency:.2} Hz (period {:.2} ms), coherence {peak_to_mean:.1}, {candidates} candidates",
            1000.0 / frequency
        ),
        Detection::Aperiodic => println!("  verdict: APERIODIC"),
    }
}

fn main() {
    let mut rng = Rng::new(3);
    analyse(
        "mplayer-mp3 (32.5 jobs/s)",
        Box::new(MediaPlayer::new(MediaConfig::mplayer_mp3(), rng.fork())),
        3,
    );
    analyse(
        "periodic RT task (P = 20 ms)",
        Box::new(PeriodicRt::new(
            "rt",
            Dur::ms(4),
            Dur::ms(20),
            0.05,
            rng.fork(),
        )),
        3,
    );
    analyse(
        "aperiodic bursty app",
        Box::new(Aperiodic::new(Dur::ms(23), Dur::ms(4), 5, rng.fork())),
        3,
    );
}
