//! A media-center scenario: video and audio players with different job
//! rates share the CPU with a best-effort transcode, all under the
//! self-tuning machinery.
//!
//! ```text
//! cargo run --example media_center
//! ```
//!
//! Shows the per-task period identification (25 Hz vs 32.5 Hz), the
//! independent reservations, and that the unreserved batch job only gets
//! the leftover CPU — temporal isolation in action.

use selftune::prelude::*;

fn main() {
    let mut kernel = Kernel::new(ReservationScheduler::new());
    let (hook, reader) = Tracer::create(TracerConfig::default());
    kernel.install_hook(Box::new(hook));
    let mut rng = Rng::new(7);

    // Two legacy players with different rates.
    let mut video_cfg = MediaConfig::mplayer_video_25fps();
    video_cfg.label = "video".to_owned();
    let video = kernel.spawn("video", Box::new(MediaPlayer::new(video_cfg, rng.fork())));
    let mut audio_cfg = MediaConfig::mplayer_mp3();
    audio_cfg.label = "audio".to_owned();
    let audio = kernel.spawn("audio", Box::new(MediaPlayer::new(audio_cfg, rng.fork())));

    // A CPU-hungry batch transcode in the fair (best-effort) class.
    let batch = kernel.spawn(
        "batch",
        Box::new(Transcoder::new(
            TranscodeConfig {
                label: "batch".to_owned(),
                frames: 2000,
                per_frame: Dur::ms(30),
                noise_frac: 0.05,
                syscalls_per_frame: 40,
            },
            rng.fork(),
        )),
    );

    let mut manager = SelfTuningManager::new(ManagerConfig::default(), reader);
    manager.manage(video, "video", ControllerConfig::default());
    manager.manage(audio, "audio", ControllerConfig::default());
    // The batch job is deliberately *not* managed: it has no deadline.

    let horizon = Dur::secs(20);
    manager.run(&mut kernel, Time::ZERO + horizon);

    println!("after {} of simulated time:", horizon);
    for (task, label, nominal_ms) in [(video, "video", 40.0), (audio, "audio", 1000.0 / 32.5)] {
        let p = manager
            .controller_of(task)
            .and_then(|c| c.period())
            .map(|p| p.as_ms_f64());
        let bw = manager
            .server_of(task)
            .map(|sid| kernel.sched().server(sid).config().bandwidth());
        let ift = kernel
            .metrics()
            .inter_mark_times_ms(&format!("{label}.frame"));
        let steady = &ift[ift.len() / 2..];
        let mean = steady.iter().sum::<f64>() / steady.len() as f64;
        println!(
            "  {label:5}: period {} (nominal {nominal_ms:.2} ms), reserved {}, steady IFT {mean:.2} ms",
            p.map_or("-".into(), |v| format!("{v:.2} ms")),
            bw.map_or("-".into(), |v| format!("{:.1}%", 100.0 * v)),
        );
    }

    let batch_share = kernel.thread_time(batch).ratio(horizon);
    println!(
        "  batch: unreserved, got {:.1}% of the CPU (the leftover)",
        100.0 * batch_share
    );
    let total = kernel.sched().total_reserved_bandwidth();
    println!(
        "  total reserved bandwidth: {:.1}% (U_lub = 95%)",
        100.0 * total
    );

    assert!(batch_share > 0.2, "batch should still make progress");
}
