//! A 16-node fleet of legacy applications under self-tuning scheduling,
//! then a head-to-head: placement frozen at arrival vs feedback-driven
//! re-placement under a skewed overload.
//!
//! ```text
//! cargo run --release --example cluster_fleet
//! ```
//!
//! Every node runs the paper's full single-machine stack (tracer → period
//! analyser → LFS++ → CBS supervisor); the cluster layer places 128
//! arriving tasks across the fleet with worst-fit admission control backed
//! by the minbudget schedulability test, churns some of them away, injects
//! a fleet-wide overload window, and reduces everything to aggregate
//! deadline-miss statistics. The second half packs lying legacy tasks
//! (claimed 2 ms jobs, real 6 ms) onto one node and shows the feedback
//! rebalancer migrating them off it mid-run.

use selftune::cluster::prelude::*;
use selftune::simcore::time::Dur;

fn main() {
    let spec = ScenarioSpec::new("fleet-demo", 16, 128, Dur::secs(5))
        .with_mix(TaskMix::mixed_server())
        .with_arrivals(ArrivalSchedule::Poisson {
            mean_gap: Dur::ms(15),
        })
        .with_churn(Churn {
            mean_lifetime: Dur::secs(4),
            min_lifetime: Dur::ms(800),
        })
        .with_overload(OverloadWindow {
            start: Dur::ms(2_000),
            end: Dur::ms(3_500),
            hogs_per_node: 1,
            chunk: Dur::ms(10),
            nodes: NodeFilter::All,
        })
        .with_policy(PolicyKind::WorstFit)
        .with_ulub(0.9);

    let runner = ClusterRunner::available_parallelism();
    println!(
        "running '{}': {} nodes, {} tasks, horizon {:.1}s on {} worker thread(s)...",
        spec.name,
        spec.nodes,
        spec.tasks,
        spec.horizon.as_secs_f64(),
        runner.threads(),
    );
    let fleet = runner.run(&spec, 42);

    println!("\n{}", fleet.render());

    let out = std::path::Path::new("results");
    fleet.write_csv(out).expect("write fleet CSVs");
    println!(
        "CSV written to {}/cluster_nodes.csv, cluster_miss_cdf.csv, cluster_util_hist.csv",
        out.display()
    );

    // -- static vs feedback placement under a skewed overload ------------
    //
    // The canonical demo (`ScenarioSpec::skewed_overload_demo`): the task
    // kind claims 2 ms jobs but burns 6 ms, so first-fit packs all of
    // them onto node 0 — nominally schedulable, measurably melting once
    // the hog burst lands on the same node.
    let skewed = ScenarioSpec::skewed_overload_demo(4, 12);
    let frozen = runner.run(&skewed, 42);
    let feedback = runner.run(
        &skewed
            .clone()
            .with_rebalance(ScenarioSpec::demo_rebalance()),
        42,
    );

    println!(
        "\n-- skewed overload: static placement --\n{}",
        frozen.render()
    );
    println!(
        "-- skewed overload: feedback re-placement --\n{}",
        feedback.render()
    );
    println!(
        "feedback cut the fleet miss rate {:.1}% -> {:.1}% with {} migration(s)",
        100.0 * frozen.miss_ratio(),
        100.0 * feedback.miss_ratio(),
        feedback.rebalance.moves,
    );
}
