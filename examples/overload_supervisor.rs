//! Overload behaviour: three greedy legacy tasks whose combined demand
//! exceeds the CPU. The supervisor compresses the requests so that
//! Σ Qᵢ/Tᵢ ≤ U_lub (Equation (1) of the paper) while every task keeps a
//! proportional share.
//!
//! ```text
//! cargo run --example overload_supervisor
//! ```

use selftune::prelude::*;
use selftune_apps::PeriodicRt;

fn main() {
    let mut kernel = Kernel::new(ReservationScheduler::new());
    let (hook, reader) = Tracer::create(TracerConfig::default());
    kernel.install_hook(Box::new(hook));

    let mut manager = SelfTuningManager::new(ManagerConfig::default(), reader);
    let mut rng = Rng::new(99);
    let demands = [(18u64, 40u64), (14, 40), (16, 40)]; // ≈ 45 + 35 + 40 = 120%
    let mut tasks = Vec::new();
    for (i, &(c, p)) in demands.iter().enumerate() {
        let label = format!("task{i}");
        let w = PeriodicRt::new(&label, Dur::ms(c), Dur::ms(p), 0.05, rng.fork());
        let tid = kernel.spawn(&label, Box::new(w));
        manager.manage(tid, &label, ControllerConfig::default());
        tasks.push((tid, label, c as f64 / p as f64));
    }
    println!(
        "combined demand ≈ {:.0}% of the CPU; U_lub = {:.0}%",
        demands
            .iter()
            .map(|&(c, p)| 100.0 * c as f64 / p as f64)
            .sum::<f64>(),
        100.0 * manager.config().supervisor.ulub
    );

    manager.run(&mut kernel, Time::ZERO + Dur::secs(15));

    println!("\nafter 15 s of adaptation:");
    let mut total = 0.0;
    for (tid, label, demand) in &tasks {
        let bw = manager
            .server_of(*tid)
            .map(|sid| kernel.sched().server(sid).config().bandwidth())
            .unwrap_or(0.0);
        let got = kernel.thread_time(*tid).ratio(Dur::secs(15));
        total += bw;
        println!(
            "  {label}: wants ≈ {:.0}%, reserved {:.1}%, actually consumed {:.1}%",
            100.0 * demand,
            100.0 * bw,
            100.0 * got
        );
    }
    println!("  total reserved: {:.1}% (≤ 95% always)", 100.0 * total);
    assert!(total <= 0.95 + 1e-9);
}
