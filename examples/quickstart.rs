//! Quickstart: put one legacy media player under self-tuning scheduling.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! The player is a black box: it never calls a scheduler API. The manager
//! traces its system calls, identifies its 40 ms period from the event
//! spectrum, creates a CBS reservation, and keeps the budget tracking the
//! measured demand.

use selftune::prelude::*;

fn main() {
    // 1. A simulated kernel with the reservation scheduler and the
    //    low-overhead syscall tracer.
    let mut kernel = Kernel::new(ReservationScheduler::new());
    let (hook, reader) = Tracer::create(TracerConfig::default());
    kernel.install_hook(Box::new(hook));

    // 2. The legacy application: mplayer playing a 25 fps movie.
    let config = MediaConfig::mplayer_video_25fps();
    println!(
        "player: {} fps video, mean decode {:.1} ms (utilisation ≈ {:.0}%)",
        config.rate_hz,
        config.cost.mean().as_ms_f64(),
        100.0 * config.utilisation()
    );
    let tid = kernel.spawn("mplayer", Box::new(MediaPlayer::new(config, Rng::new(42))));

    // 3. The self-tuning manager (the paper's user-space lfs++ daemon).
    let mut manager = SelfTuningManager::new(ManagerConfig::default(), reader);
    manager.manage(tid, "mplayer", ControllerConfig::default());

    // 4. Run for 10 simulated seconds.
    manager.run(&mut kernel, Time::ZERO + Dur::secs(10));

    // 5. Report what the machinery figured out on its own.
    let period = manager
        .controller_of(tid)
        .and_then(|c| c.period())
        .expect("period detected");
    let sid = manager.server_of(tid).expect("reservation created");
    let server = kernel.sched().server(sid);
    println!("detected period : {:.2} ms", period.as_ms_f64());
    println!(
        "reservation     : Q = {:.2} ms every T = {:.2} ms  (bandwidth {:.1}%)",
        server.config().budget.as_ms_f64(),
        server.config().period.as_ms_f64(),
        100.0 * server.config().bandwidth()
    );

    let ift = kernel.metrics().inter_mark_times_ms("mplayer.frame");
    let steady = &ift[ift.len() / 2..];
    let mean = steady.iter().sum::<f64>() / steady.len() as f64;
    let sd = selftune::simcore::stats::std_dev(steady);
    println!(
        "QoS             : {} frames, steady inter-frame time {:.2} ± {:.2} ms (nominal 40 ms)",
        ift.len() + 1,
        mean,
        sd
    );
    println!(
        "frames dropped  : {}",
        kernel.metrics().counter("mplayer.dropped")
    );
}
